//! The zero-copy wire lane: monomorphic buffer writer/reader.
//!
//! The generic lane ([`crate::mem::XdrMem`] behind `&mut dyn XdrStream`)
//! deliberately keeps the 1984 interpretive structure — virtual dispatch,
//! per-item overflow checks, per-layer status propagation — because that is
//! the baseline the paper measures against. This module is the other lane:
//! what the *specialized* runtime uses once Tempo has removed the
//! interpretation. It has
//!
//! * **no trait objects** — every method is a direct, inlinable call on a
//!   concrete type (the monomorphic fast lane);
//! * **exact-size preallocation** driven by the [`crate::sizes`] arithmetic
//!   (the paper's §3 statically-known-size exploitation): one buffer of
//!   exactly the wire length, acquired once and rewound per call;
//! * **borrowed-slice decode** — [`WireView`] hands out `&[u8]` views of
//!   opaque/array payloads straight from the received datagram; bytes are
//!   copied only at the API boundary where the caller needs ownership
//!   (the paper's §3 copy elimination);
//! * **allocation/copy accounting** — every buffer acquisition and byte
//!   move is folded into an [`OpCounts`] (`heap_allocs` / `mem_moves`), so
//!   the cost model and `Summary` can report bytes-copied and
//!   allocs-per-call, and tests can pin "zero allocations in steady state".

use crate::cost::OpCounts;
use crate::error::{XdrError, XdrResult};
use crate::sizes::BYTES_PER_XDR_UNIT;

/// An owned, reusable wire buffer for the zero-copy encode lane.
///
/// Unlike [`crate::mem::XdrMem`] this is not an [`crate::XdrStream`]: there
/// is no operation tag and no vtable, only direct monomorphic writes. The
/// buffer is acquired once at its exact wire length and *rewound* for every
/// subsequent message (`x_setpostn`-style reuse), so steady-state encoding
/// performs no heap allocation.
#[derive(Debug, Default)]
pub struct WireBuf {
    buf: Vec<u8>,
    counts: OpCounts,
}

impl WireBuf {
    /// An empty buffer (first [`WireBuf::reset`] performs the one exact
    /// allocation).
    pub fn new() -> Self {
        WireBuf::default()
    }

    /// A buffer preallocated to exactly `wire_len` bytes, zero-filled.
    pub fn with_exact(wire_len: usize) -> Self {
        let mut w = WireBuf::new();
        w.reset(wire_len);
        w
    }

    /// Rewind for a fresh message of exactly `wire_len` bytes: the buffer
    /// is zero-filled up to `wire_len` and truncated to it. Grows (and
    /// counts a heap allocation) only when `wire_len` exceeds the current
    /// capacity — in steady state this is a pure rewind.
    pub fn reset(&mut self, wire_len: usize) {
        if self.buf.capacity() < wire_len {
            self.counts.heap_allocs += 1;
        }
        self.buf.clear();
        self.buf.resize(wire_len, 0);
    }

    /// The current wire image.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Mutable access to the wire image (what a compiled stub writes into
    /// in one pass — header and arguments together, single-copy).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Current wire length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer currently holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity of the underlying allocation.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Write one 32-bit word in network byte order at byte offset `off`.
    #[inline]
    pub fn put_u32(&mut self, off: usize, v: u32) -> XdrResult {
        match self.buf.get_mut(off..off + BYTES_PER_XDR_UNIT) {
            Some(dst) => {
                dst.copy_from_slice(&v.to_be_bytes());
                self.counts.mem_moves += BYTES_PER_XDR_UNIT as u64;
                Ok(())
            }
            None => Err(XdrError::Overflow {
                needed: BYTES_PER_XDR_UNIT,
                remaining: self.buf.len().saturating_sub(off),
            }),
        }
    }

    /// Write one signed 32-bit word in network byte order.
    #[inline]
    pub fn put_i32(&mut self, off: usize, v: i32) -> XdrResult {
        self.put_u32(off, v as u32)
    }

    /// Write raw bytes at `off` (caller is responsible for XDR padding).
    #[inline]
    pub fn put_bytes(&mut self, off: usize, src: &[u8]) -> XdrResult {
        match self.buf.get_mut(off..off + src.len()) {
            Some(dst) => {
                dst.copy_from_slice(src);
                self.counts.mem_moves += src.len() as u64;
                Ok(())
            }
            None => Err(XdrError::Overflow {
                needed: src.len(),
                remaining: self.buf.len().saturating_sub(off),
            }),
        }
    }

    /// Bulk-encode a slice of 32-bit integers in network byte order
    /// starting at `off` — the single-copy array lane (one pass, no
    /// per-element dispatch or overflow check).
    #[inline]
    pub fn put_i32_slice(&mut self, off: usize, src: &[i32]) -> XdrResult {
        let nbytes = src.len() * BYTES_PER_XDR_UNIT;
        let Some(dst) = self.buf.get_mut(off..off + nbytes) else {
            return Err(XdrError::Overflow {
                needed: nbytes,
                remaining: self.buf.len().saturating_sub(off),
            });
        };
        for (chunk, v) in dst.chunks_exact_mut(BYTES_PER_XDR_UNIT).zip(src) {
            chunk.copy_from_slice(&v.to_be_bytes());
        }
        self.counts.mem_moves += nbytes as u64;
        Ok(())
    }

    /// A borrowed zero-copy reader over the current wire image.
    pub fn view(&self) -> WireView<'_> {
        WireView::new(&self.buf)
    }

    /// Allocation/copy counters accumulated by this buffer.
    pub fn counts(&self) -> &OpCounts {
        &self.counts
    }

    /// Mutable access to the counters (for folding into a caller's total).
    pub fn counts_mut(&mut self) -> &mut OpCounts {
        &mut self.counts
    }
}

/// A borrowed, zero-copy reader over received wire bytes.
///
/// Reads are monomorphic and positionally explicit; array/opaque payloads
/// come back as `&'a [u8]` **views into the original buffer** — nothing is
/// copied until the caller asks for ownership (e.g.
/// [`WireView::read_i32s_into`], which is the single API-boundary copy).
#[derive(Debug, Clone, Copy)]
pub struct WireView<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireView<'a> {
    /// A view over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireView { buf, pos: 0 }
    }

    /// Total length of the viewed message.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the viewed message is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current cursor position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Reposition the cursor.
    pub fn set_pos(&mut self, pos: usize) -> XdrResult {
        if pos > self.buf.len() {
            return Err(XdrError::BadPosition(pos));
        }
        self.pos = pos;
        Ok(())
    }

    /// Bytes remaining after the cursor.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read one 32-bit word in network byte order, advancing the cursor.
    #[inline]
    pub fn get_u32(&mut self) -> XdrResult<u32> {
        match self.buf.get(self.pos..self.pos + BYTES_PER_XDR_UNIT) {
            Some(src) => {
                let v = u32::from_be_bytes([src[0], src[1], src[2], src[3]]);
                self.pos += BYTES_PER_XDR_UNIT;
                Ok(v)
            }
            None => Err(XdrError::Underflow {
                needed: BYTES_PER_XDR_UNIT,
                remaining: self.remaining(),
            }),
        }
    }

    /// Read one signed 32-bit word in network byte order.
    #[inline]
    pub fn get_i32(&mut self) -> XdrResult<i32> {
        self.get_u32().map(|v| v as i32)
    }

    /// Borrow `len` raw bytes from the message without copying, advancing
    /// the cursor — the zero-copy opaque/array payload view.
    #[inline]
    pub fn bytes(&mut self, len: usize) -> XdrResult<&'a [u8]> {
        match self.buf.get(self.pos..self.pos + len) {
            Some(src) => {
                self.pos += len;
                Ok(src)
            }
            None => Err(XdrError::Underflow {
                needed: len,
                remaining: self.remaining(),
            }),
        }
    }

    /// Decode `out.len()` big-endian 32-bit integers into `out` in one
    /// bulk pass — the single copy at the API boundary where the caller
    /// needs ownership. `counts` records the bytes moved.
    #[inline]
    pub fn read_i32s_into(&mut self, out: &mut [i32], counts: &mut OpCounts) -> XdrResult {
        let nbytes = out.len() * BYTES_PER_XDR_UNIT;
        let src = self.bytes(nbytes)?;
        for (v, chunk) in out.iter_mut().zip(src.chunks_exact(BYTES_PER_XDR_UNIT)) {
            *v = i32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        counts.mem_moves += nbytes as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::XdrMem;
    use crate::primitives::xdr_int;

    #[test]
    fn exact_prealloc_then_rewind_does_not_allocate() {
        let mut w = WireBuf::with_exact(64);
        assert_eq!(w.counts().heap_allocs, 1, "one exact allocation");
        for _ in 0..10 {
            w.reset(64);
            w.put_u32(0, 7).unwrap();
        }
        assert_eq!(w.counts().heap_allocs, 1, "rewinds are free");
        w.reset(128);
        assert_eq!(w.counts().heap_allocs, 2, "growth counts");
    }

    #[test]
    fn put_matches_generic_lane_bytes() {
        // The monomorphic writer must produce byte-identical XDR to the
        // interpretive stream for the same values.
        let vals = [0i32, -1, 0x0102_0304, i32::MIN, i32::MAX];
        let mut gen = XdrMem::encoder(vals.len() * 4);
        for v in vals {
            let mut x = v;
            xdr_int(&mut gen, &mut x).unwrap();
        }
        let mut fast = WireBuf::with_exact(vals.len() * 4);
        fast.put_i32_slice(0, &vals).unwrap();
        assert_eq!(gen.bytes(), fast.bytes());
    }

    #[test]
    fn put_out_of_range_is_detected() {
        let mut w = WireBuf::with_exact(4);
        assert!(w.put_u32(4, 1).is_err());
        assert!(w.put_i32_slice(0, &[1, 2]).is_err());
        assert!(w.put_bytes(3, b"ab").is_err());
    }

    #[test]
    fn view_reads_back_scalars_and_slices() {
        let mut w = WireBuf::with_exact(12);
        w.put_i32(0, -5).unwrap();
        w.put_i32_slice(4, &[6, 7]).unwrap();
        let mut v = w.view();
        assert_eq!(v.get_i32().unwrap(), -5);
        let mut out = [0i32; 2];
        let mut c = OpCounts::new();
        v.read_i32s_into(&mut out, &mut c).unwrap();
        assert_eq!(out, [6, 7]);
        assert_eq!(c.mem_moves, 8);
        assert_eq!(v.remaining(), 0);
    }

    #[test]
    fn view_bytes_are_borrowed_not_copied() {
        let wire = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let mut v = WireView::new(&wire);
        let payload = v.bytes(8).unwrap();
        // Same address range: a view into the original buffer.
        assert!(std::ptr::eq(payload.as_ptr(), wire.as_ptr()));
        assert!(v.bytes(1).is_err(), "past the end");
    }

    #[test]
    fn view_underflow_and_positioning() {
        let wire = [0u8; 6];
        let mut v = WireView::new(&wire);
        assert!(v.get_u32().is_ok());
        assert!(matches!(
            v.get_u32().unwrap_err(),
            XdrError::Underflow { needed: 4, .. }
        ));
        v.set_pos(0).unwrap();
        assert_eq!(v.remaining(), 6);
        assert!(v.set_pos(7).is_err());
    }

    #[test]
    fn view_decodes_generic_lane_output() {
        // Cross-lane: bytes produced by the layered generic encoder decode
        // identically through the zero-copy view.
        let mut gen = XdrMem::encoder(64);
        for v in [3i32, -9, 1 << 20] {
            let mut x = v;
            xdr_int(&mut gen, &mut x).unwrap();
        }
        let mut view = WireView::new(gen.bytes());
        assert_eq!(view.get_i32().unwrap(), 3);
        assert_eq!(view.get_i32().unwrap(), -9);
        assert_eq!(view.get_i32().unwrap(), 1 << 20);
    }
}
