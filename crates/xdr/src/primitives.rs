//! The primitive XDR filter routines (`xdr_long`, `xdr_int`, `xdr_bool`, …).
//!
//! Each routine follows the shape of Figure 2 of the paper: a single
//! function that can encode, decode, or free, selecting the operation at
//! run time from the stream's `x_op` tag. That dispatch — repeated for every
//! primitive of every argument of every call — is specialization
//! opportunity §3.1. Functions are `#[inline(never)]` so the layered call
//! chain of Figure 1 is preserved in the generic baseline binary.

use crate::error::{XdrError, XdrResult};
use crate::stream::{XdrOp, XdrStream};

/// Record a micro-layer boundary crossing plus the Figure-2 dispatch.
#[inline(always)]
fn enter_dispatch(xdrs: &mut dyn XdrStream) -> XdrOp {
    let c = xdrs.counts_mut();
    c.layer_calls += 1;
    c.dispatches += 1;
    xdrs.op()
}

/// Encode or decode a 32-bit "long" integer — the exact analog of Figure 2.
#[inline(never)]
pub fn xdr_long(xdrs: &mut dyn XdrStream, lp: &mut i32) -> XdrResult {
    match enter_dispatch(xdrs) {
        XdrOp::Encode => xdrs.putlong(*lp),
        XdrOp::Decode => {
            *lp = xdrs.getlong()?;
            Ok(())
        }
        XdrOp::Free => Ok(()),
    }
}

/// Encode or decode an unsigned 32-bit "long".
#[inline(never)]
pub fn xdr_u_long(xdrs: &mut dyn XdrStream, ulp: &mut u32) -> XdrResult {
    match enter_dispatch(xdrs) {
        XdrOp::Encode => xdrs.putlong(*ulp as i32),
        XdrOp::Decode => {
            *ulp = xdrs.getlong()? as u32;
            Ok(())
        }
        XdrOp::Free => Ok(()),
    }
}

/// Encode or decode an `int`.
///
/// The original contains a machine-dependent switch on integer size
/// (`sizeof(int)` vs `sizeof(long)`, see the Figure 1 trace); on every
/// platform we target the sizes agree, so — like the C code on those
/// platforms — this forwards to [`xdr_long`] through one more micro-layer.
#[inline(never)]
pub fn xdr_int(xdrs: &mut dyn XdrStream, ip: &mut i32) -> XdrResult {
    xdrs.counts_mut().layer_calls += 1;
    xdr_long(xdrs, ip)
}

/// Encode or decode an `unsigned int`.
#[inline(never)]
pub fn xdr_u_int(xdrs: &mut dyn XdrStream, up: &mut u32) -> XdrResult {
    xdrs.counts_mut().layer_calls += 1;
    xdr_u_long(xdrs, up)
}

/// Encode or decode a `short` (carried as a full XDR unit on the wire).
#[inline(never)]
pub fn xdr_short(xdrs: &mut dyn XdrStream, sp: &mut i16) -> XdrResult {
    match enter_dispatch(xdrs) {
        XdrOp::Encode => xdrs.putlong(*sp as i32),
        XdrOp::Decode => {
            *sp = xdrs.getlong()? as i16;
            Ok(())
        }
        XdrOp::Free => Ok(()),
    }
}

/// Encode or decode an `unsigned short`.
#[inline(never)]
pub fn xdr_u_short(xdrs: &mut dyn XdrStream, usp: &mut u16) -> XdrResult {
    match enter_dispatch(xdrs) {
        XdrOp::Encode => xdrs.putlong(*usp as i32),
        XdrOp::Decode => {
            *usp = xdrs.getlong()? as u16;
            Ok(())
        }
        XdrOp::Free => Ok(()),
    }
}

/// Encode or decode a `char` (one XDR unit on the wire, like the C code).
#[inline(never)]
pub fn xdr_char(xdrs: &mut dyn XdrStream, cp: &mut u8) -> XdrResult {
    let mut i = *cp as i32;
    xdr_int(xdrs, &mut i)?;
    *cp = i as u8;
    Ok(())
}

/// Encode or decode a boolean; on the wire TRUE is 1 and FALSE is 0, and a
/// decoder must reject anything else.
#[inline(never)]
pub fn xdr_bool(xdrs: &mut dyn XdrStream, bp: &mut bool) -> XdrResult {
    match enter_dispatch(xdrs) {
        XdrOp::Encode => xdrs.putlong(if *bp { 1 } else { 0 }),
        XdrOp::Decode => {
            let v = xdrs.getlong()?;
            *bp = match v {
                0 => false,
                1 => true,
                other => return Err(XdrError::BadBool(other)),
            };
            Ok(())
        }
        XdrOp::Free => Ok(()),
    }
}

/// Encode or decode an enumeration, validating membership on decode.
///
/// `members` lists the declared enum values (rpcgen passes the list from
/// the IDL declaration).
#[inline(never)]
pub fn xdr_enum(xdrs: &mut dyn XdrStream, ep: &mut i32, members: &[i32]) -> XdrResult {
    match enter_dispatch(xdrs) {
        XdrOp::Encode => xdrs.putlong(*ep),
        XdrOp::Decode => {
            let v = xdrs.getlong()?;
            if !members.contains(&v) {
                return Err(XdrError::BadEnumValue(v));
            }
            *ep = v;
            Ok(())
        }
        XdrOp::Free => Ok(()),
    }
}

/// Encode or decode a 64-bit "hyper" integer (two XDR units, most
/// significant first).
#[inline(never)]
pub fn xdr_hyper(xdrs: &mut dyn XdrStream, hp: &mut i64) -> XdrResult {
    match enter_dispatch(xdrs) {
        XdrOp::Encode => {
            xdrs.putlong((*hp >> 32) as i32)?;
            xdrs.putlong(*hp as i32)
        }
        XdrOp::Decode => {
            let hi = xdrs.getlong()? as u32 as u64;
            let lo = xdrs.getlong()? as u32 as u64;
            *hp = ((hi << 32) | lo) as i64;
            Ok(())
        }
        XdrOp::Free => Ok(()),
    }
}

/// Encode or decode an unsigned 64-bit "hyper".
#[inline(never)]
pub fn xdr_u_hyper(xdrs: &mut dyn XdrStream, hp: &mut u64) -> XdrResult {
    let mut signed = *hp as i64;
    xdr_hyper(xdrs, &mut signed)?;
    *hp = signed as u64;
    Ok(())
}

/// Encode or decode an IEEE-754 single-precision float (one XDR unit).
#[inline(never)]
pub fn xdr_float(xdrs: &mut dyn XdrStream, fp: &mut f32) -> XdrResult {
    match enter_dispatch(xdrs) {
        XdrOp::Encode => xdrs.putlong(fp.to_bits() as i32),
        XdrOp::Decode => {
            *fp = f32::from_bits(xdrs.getlong()? as u32);
            Ok(())
        }
        XdrOp::Free => Ok(()),
    }
}

/// Encode or decode an IEEE-754 double-precision float (two XDR units,
/// most significant word first).
#[inline(never)]
pub fn xdr_double(xdrs: &mut dyn XdrStream, dp: &mut f64) -> XdrResult {
    match enter_dispatch(xdrs) {
        XdrOp::Encode => {
            let bits = dp.to_bits();
            xdrs.putlong((bits >> 32) as i32)?;
            xdrs.putlong(bits as i32)
        }
        XdrOp::Decode => {
            let hi = xdrs.getlong()? as u32 as u64;
            let lo = xdrs.getlong()? as u32 as u64;
            *dp = f64::from_bits((hi << 32) | lo);
            Ok(())
        }
        XdrOp::Free => Ok(()),
    }
}

/// The trivial filter for `void` results; always succeeds and moves nothing.
#[inline(never)]
pub fn xdr_void(xdrs: &mut dyn XdrStream) -> XdrResult {
    xdrs.counts_mut().layer_calls += 1;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::XdrMem;

    fn roundtrip<T: Copy + PartialEq + std::fmt::Debug>(
        encode: impl Fn(&mut dyn XdrStream, &mut T) -> XdrResult,
        val: T,
        zero: T,
        wire_len: usize,
    ) {
        let mut e = XdrMem::encoder(64);
        let mut v = val;
        encode(&mut e, &mut v).unwrap();
        assert_eq!(e.getpos(), wire_len, "wire length");
        let mut d = XdrMem::decoder(e.bytes());
        let mut out = zero;
        encode(&mut d, &mut out).unwrap();
        assert_eq!(out, val);
    }

    #[test]
    fn long_roundtrip() {
        roundtrip(xdr_long, i32::MIN, 0, 4);
        roundtrip(xdr_long, i32::MAX, 0, 4);
        roundtrip(xdr_long, -1, 0, 4);
    }

    #[test]
    fn u_long_roundtrip() {
        roundtrip(xdr_u_long, u32::MAX, 0, 4);
    }

    #[test]
    fn int_forwards_to_long() {
        let mut e = XdrMem::encoder(8);
        let mut v = 99;
        xdr_int(&mut e, &mut v).unwrap();
        assert_eq!(e.bytes(), &[0, 0, 0, 99]);
        // Two layer calls: xdr_int plus xdr_long underneath.
        assert_eq!(e.counts().layer_calls, 2);
        assert_eq!(e.counts().dispatches, 1);
    }

    #[test]
    fn short_roundtrip_takes_full_unit() {
        roundtrip(xdr_short, -7i16, 0, 4);
        roundtrip(xdr_u_short, 65535u16, 0, 4);
    }

    #[test]
    fn char_roundtrip() {
        roundtrip(xdr_char, 0xabu8, 0, 4);
    }

    #[test]
    fn bool_roundtrip_and_validation() {
        roundtrip(xdr_bool, true, false, 4);
        roundtrip(xdr_bool, false, true, 4);
        let mut d = XdrMem::decoder(&[0, 0, 0, 2]);
        let mut b = false;
        assert_eq!(xdr_bool(&mut d, &mut b).unwrap_err(), XdrError::BadBool(2));
    }

    #[test]
    fn enum_validates_membership() {
        let members = [0, 1, 5];
        let mut e = XdrMem::encoder(4);
        let mut v = 5;
        xdr_enum(&mut e, &mut v, &members).unwrap();
        let mut d = XdrMem::decoder(e.bytes());
        let mut out = 0;
        xdr_enum(&mut d, &mut out, &members).unwrap();
        assert_eq!(out, 5);

        let mut bad = XdrMem::decoder(&[0, 0, 0, 3]);
        assert_eq!(
            xdr_enum(&mut bad, &mut out, &members).unwrap_err(),
            XdrError::BadEnumValue(3)
        );
    }

    #[test]
    fn hyper_roundtrip_msw_first() {
        let mut e = XdrMem::encoder(8);
        let mut v = 0x0102_0304_0506_0708i64;
        xdr_hyper(&mut e, &mut v).unwrap();
        assert_eq!(e.bytes(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        roundtrip(xdr_hyper, i64::MIN, 0, 8);
        roundtrip(xdr_u_hyper, u64::MAX, 0, 8);
    }

    #[test]
    fn float_and_double_roundtrip() {
        roundtrip(xdr_float, std::f32::consts::PI, 0.0, 4);
        roundtrip(xdr_double, -std::f64::consts::E, 0.0, 8);
        roundtrip(xdr_double, f64::INFINITY, 0.0, 8);
    }

    #[test]
    fn free_mode_is_noop_for_scalars() {
        let mut f = XdrMem::freer();
        let mut v = 3;
        xdr_long(&mut f, &mut v).unwrap();
        assert_eq!(v, 3);
        assert_eq!(f.getpos(), 0);
    }

    #[test]
    fn void_succeeds() {
        let mut e = XdrMem::encoder(0);
        xdr_void(&mut e).unwrap();
        assert_eq!(e.getpos(), 0);
    }

    #[test]
    fn dispatch_counted_per_primitive() {
        let mut e = XdrMem::encoder(64);
        let mut v = 1;
        for _ in 0..10 {
            xdr_long(&mut e, &mut v).unwrap();
        }
        assert_eq!(e.counts().dispatches, 10);
        assert_eq!(e.counts().overflow_checks, 10);
    }
}
