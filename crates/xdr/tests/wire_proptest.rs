//! Property tests pinning the two wire lanes against each other: the
//! monomorphic zero-copy lane ([`WireBuf`]/[`WireView`]) must be
//! byte-for-byte interchangeable with the interpretive generic lane
//! ([`XdrMem`] behind `dyn XdrStream`) — encode images identical, decodes
//! of each other's output identical, payload views borrowed not copied.

use proptest::prelude::*;
use specrpc_xdr::composite::xdr_array;
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::primitives::xdr_int;
use specrpc_xdr::{OpCounts, WireBuf, WireView, XdrStream};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// WireBuf bulk encode == generic per-element encode, byte for byte.
    #[test]
    fn wirebuf_encode_matches_generic_stream(
        data in prop::collection::vec(any::<i32>(), 0..200),
    ) {
        let mut gen = XdrMem::encoder(8 + data.len() * 4);
        let mut d = data.clone();
        xdr_array(&mut gen, &mut d, 100_000, xdr_int).unwrap();

        let mut fast = WireBuf::with_exact(4 + data.len() * 4);
        fast.put_u32(0, data.len() as u32).unwrap();
        fast.put_i32_slice(4, &data).unwrap();

        prop_assert_eq!(gen.bytes(), fast.bytes());
    }

    /// The zero-copy view decodes generic-lane output to the same values
    /// the generic decoder produces, and its payload view aliases the
    /// received bytes (no copy until the API-boundary read).
    #[test]
    fn wireview_decode_matches_generic_stream(
        data in prop::collection::vec(any::<i32>(), 0..200),
    ) {
        let mut gen = XdrMem::encoder(8 + data.len() * 4);
        let mut d = data.clone();
        xdr_array(&mut gen, &mut d, 100_000, xdr_int).unwrap();
        let wire = gen.bytes();

        // Generic decode lane.
        let mut gdec = XdrMem::decoder(wire);
        let mut slow: Vec<i32> = Vec::new();
        xdr_array(&mut gdec, &mut slow, 100_000, xdr_int).unwrap();

        // Zero-copy lane: borrowed view, one bulk copy at the boundary.
        let mut view = WireView::new(wire);
        let len = view.get_u32().unwrap() as usize;
        prop_assert_eq!(len, data.len());
        let payload_pos = view.pos();
        let payload = view.bytes(len * 4).unwrap();
        prop_assert!(
            std::ptr::eq(payload.as_ptr(), wire[payload_pos..].as_ptr()),
            "payload view must alias the received buffer"
        );
        view.set_pos(payload_pos).unwrap();
        let mut fast = vec![0i32; len];
        let mut counts = OpCounts::new();
        view.read_i32s_into(&mut fast, &mut counts).unwrap();

        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(&fast, &data);
        prop_assert_eq!(counts.mem_moves, (len * 4) as u64);
        // The generic lane paid interpretation the view lane did not.
        if !data.is_empty() {
            prop_assert!(gdec.counts().dispatches > 0);
        }
    }

    /// Round trip entirely within the zero-copy lane, with rewinds
    /// (no allocation after the exact preallocation).
    #[test]
    fn wirebuf_rewind_roundtrip(
        first in prop::collection::vec(any::<i32>(), 1..64),
        second in prop::collection::vec(any::<i32>(), 1..64),
    ) {
        let cap = 4 + 64 * 4;
        let mut w = WireBuf::with_exact(cap);
        for data in [&first, &second] {
            w.reset(4 + data.len() * 4);
            w.put_u32(0, data.len() as u32).unwrap();
            w.put_i32_slice(4, data).unwrap();
            let mut v = w.view();
            let n = v.get_u32().unwrap() as usize;
            let mut back = vec![0i32; n];
            let mut counts = OpCounts::new();
            v.read_i32s_into(&mut back, &mut counts).unwrap();
            prop_assert_eq!(&back, data);
        }
        prop_assert_eq!(w.counts().heap_allocs, 1, "one exact preallocation");
    }
}
