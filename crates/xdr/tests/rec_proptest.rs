//! Property tests of the record-marking stream (`rec.rs`): round trips
//! over arbitrary fragment splits and message sizes.
//!
//! Motivation: with threaded TCP dispatch, fragment *writes* from
//! different records interleave on different connections, and the
//! reassembly side must be completely agnostic to how a record was cut
//! into fragments — any encoder fragment bound, any payload size, any
//! number of records, and the flat-record helpers (`write_record` /
//! `read_record`) must all agree byte for byte.

use proptest::prelude::*;
use specrpc_xdr::rec::{read_record, write_record, MemPipe, XdrRec};
use specrpc_xdr::{XdrOp, XdrStream};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One record, arbitrary payload, arbitrary (and different) fragment
    /// bounds on the two sides: bytes survive unchanged.
    #[test]
    fn record_roundtrip_over_arbitrary_fragment_splits(
        payload in prop::collection::vec(any::<u8>(), 0..3000),
        enc_frag in 4usize..512,
        dec_frag in 4usize..512,
    ) {
        let mut enc = XdrRec::with_fragment_size(MemPipe::new(), XdrOp::Encode, enc_frag);
        enc.putbytes(&payload).unwrap();
        enc.end_of_record().unwrap();
        let mut dec = XdrRec::with_fragment_size(enc.into_io(), XdrOp::Decode, dec_frag);
        let mut out = vec![0u8; payload.len()];
        dec.getbytes(&mut out).unwrap();
        prop_assert_eq!(out, payload);
    }

    /// Multiple records of arbitrary lengths on one stream: each record's
    /// longs decode in order, record boundaries hold (`skip_record`
    /// positions at the next record, and reading past a record's end is
    /// an error, never a silent bleed into the next record).
    #[test]
    fn multi_record_stream_with_arbitrary_boundaries(
        lens in prop::collection::vec(1usize..40, 1..6),
        frag in 4usize..64,
    ) {
        let mut enc = XdrRec::with_fragment_size(MemPipe::new(), XdrOp::Encode, frag);
        for (r, len) in lens.iter().enumerate() {
            for j in 0..*len {
                enc.putlong((r * 1000 + j) as i32).unwrap();
            }
            enc.end_of_record().unwrap();
        }
        let mut dec = XdrRec::with_fragment_size(enc.into_io(), XdrOp::Decode, frag);
        for (r, len) in lens.iter().enumerate() {
            for j in 0..*len {
                prop_assert_eq!(dec.getlong().unwrap(), (r * 1000 + j) as i32);
            }
            // The record is exhausted: the next read must fail rather
            // than bleed into the following record...
            prop_assert!(dec.getlong().is_err());
            // ...and skip_record moves cleanly to the next one.
            if r + 1 < lens.len() {
                dec.skip_record().unwrap();
            }
        }
    }

    /// The flat-record helpers used by the specialized (pre-marshaled)
    /// path: arbitrary payload sequences round-trip.
    #[test]
    fn flat_record_helpers_roundtrip(
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..2000),
            1..5,
        ),
    ) {
        let mut pipe = MemPipe::new();
        for p in &payloads {
            write_record(&mut pipe, p).unwrap();
        }
        for p in &payloads {
            prop_assert_eq!(&read_record(&mut pipe).unwrap(), p);
        }
        prop_assert_eq!(pipe.pending(), 0);
    }

    /// Interop: a record cut into an arbitrary fragment chain by the
    /// buffered encoder reassembles identically through the flat
    /// `read_record` used by the server-side reassembler.
    #[test]
    fn fragment_chains_reassemble_through_read_record(
        payload in prop::collection::vec(any::<u8>(), 1..2500),
        frag in 4usize..256,
    ) {
        let mut enc = XdrRec::with_fragment_size(MemPipe::new(), XdrOp::Encode, frag);
        enc.putbytes(&payload).unwrap();
        enc.end_of_record().unwrap();
        let mut pipe = enc.into_io();
        prop_assert_eq!(read_record(&mut pipe).unwrap(), payload);
        prop_assert_eq!(pipe.pending(), 0);
    }
}
