//! Property tests of the coalescing envelope (`coalesce.rs`): byte
//! transparency over arbitrary sub-message splits.
//!
//! The batching client packs whatever record-delimited messages fit the
//! MTU, so the frame must round-trip **any** sequence of payloads — any
//! lengths (including empty), any one-way flag pattern, any count — and
//! must never misread a plain message as an envelope.

use proptest::prelude::*;
use specrpc_xdr::coalesce::{count, pack, split, COALESCE_MAGIC};

/// One-way flags for sub-message `i` drawn from a bitmask (the vendored
/// proptest shim has no tuple strategies).
fn flag(mask: u64, i: usize) -> bool {
    mask >> (i % 64) & 1 == 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `unpack(pack(msgs)) == msgs`: arbitrary payloads and flags
    /// survive the envelope byte-for-byte, in order.
    #[test]
    fn pack_split_round_trips_arbitrary_messages(
        msgs in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..600),
            1..12,
        ),
        mask in any::<u64>(),
    ) {
        let dg = pack(
            msgs.iter()
                .enumerate()
                .map(|(i, m)| (m.as_slice(), flag(mask, i))),
        );
        prop_assert_eq!(count(&dg), msgs.len() as u32);
        let parts = split(&dg).expect("packed envelope must parse");
        prop_assert_eq!(parts.len(), msgs.len());
        for (i, ((got, got_ow), want)) in parts.iter().zip(&msgs).enumerate() {
            prop_assert_eq!(*got, want.as_slice());
            prop_assert_eq!(*got_ow, flag(mask, i));
        }
    }

    /// Plain RPC messages (arbitrary bytes not starting with the magic)
    /// are never misread as envelopes.
    #[test]
    fn non_magic_bytes_are_never_envelopes(
        payload in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let is_magic = payload.len() >= 4
            && payload[0..4] == COALESCE_MAGIC.to_be_bytes();
        if !is_magic {
            prop_assert!(split(&payload).is_none());
        }
    }

    /// Any strict prefix or extension of a valid envelope fails the
    /// exact-consumption check — truncation and trailing garbage are
    /// both detected, so a corrupted datagram degrades to "plain
    /// message" instead of silently dropping sub-messages.
    #[test]
    fn truncation_and_padding_disqualify(
        msgs in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 1..64),
            1..5,
        ),
        mask in any::<u64>(),
        extra in any::<u8>(),
    ) {
        let dg = pack(
            msgs.iter()
                .enumerate()
                .map(|(i, m)| (m.as_slice(), flag(mask, i))),
        );
        prop_assert!(split(&dg[..dg.len() - 1]).is_none());
        let mut padded = dg.clone();
        padded.push(extra);
        prop_assert!(split(&padded).is_none());
    }
}
