//! The background compile pool of the adaptive runtime: Tempo runs taken
//! **off the calling path**.
//!
//! [`Specializer`] owns a small thread pool fed over a channel with
//! [`CompileJob`]s — `(program, version, procedure,` [`ShapeKey`]`)`
//! work items carrying everything a Tempo run needs. Workers compile and
//! publish the result into the shared [`StubCache`], where the next
//! tiered lookup hot-swaps onto it. Publication is atomic by
//! construction (the cache entry's slot flips under its lock), so
//! callers racing a publish see either the generic tier or the complete
//! specialized stub set — never half of one.
//!
//! Two publication modes:
//!
//! * **Immediate** (`staged = false`): a worker publishes as soon as its
//!   compile finishes — lowest time-to-tier-1, but *when* the swap lands
//!   depends on wall-clock thread scheduling.
//! * **Staged** (`staged = true`): finished compiles park in a staging
//!   buffer until [`Specializer::publish_staged`] flips them in. The
//!   deterministic simulation drives this from fixed call indices so
//!   hot-swap points — and every counter derived from them — are
//!   reproducible run to run.

use crate::cache::{modeled_compile_ns, CacheKey, CompileClock, ShapeKey, StubCache};
use crate::pipeline::{CompiledProc, ProcPipeline};
use specrpc_rpcgen::stubgen::MsgShape;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One unit of background specialization work: the pipeline context plus
/// the resolved target and shapes (resolution is cheap and already done
/// by the enqueuing tier — workers go straight to the Tempo run).
#[derive(Clone)]
pub struct CompileJob {
    /// Specialization context (pinned length, chunk, icache budget).
    pub pipeline: ProcPipeline,
    /// Program number.
    pub prog: u32,
    /// Version number.
    pub vers: u32,
    /// Procedure number.
    pub proc_num: u32,
    /// Argument shape.
    pub arg: MsgShape,
    /// Result shape.
    pub res: MsgShape,
}

impl CompileJob {
    /// The cache key this job's compile will publish under.
    pub fn key(&self) -> CacheKey {
        (
            self.prog,
            self.vers,
            self.proc_num,
            ShapeKey::of(&self.pipeline, &self.arg, &self.res),
        )
    }
}

/// Queue-progress counters (under one lock so "idle" is a single
/// condition: `done == queued`).
#[derive(Default)]
struct Progress {
    queued: u64,
    done: u64,
}

/// A finished compile parked for publication: key, stubs, compile cost.
type StagedCompile = (CacheKey, Arc<CompiledProc>, u64);

struct Shared {
    cache: Arc<StubCache>,
    /// `Some` in staged mode: finished compiles wait here for
    /// [`Specializer::publish_staged`].
    staged: Option<Mutex<Vec<StagedCompile>>>,
    progress: Mutex<Progress>,
    idle: Condvar,
    completed: AtomicU64,
    failed: AtomicU64,
    depth_high_water: AtomicU64,
    published: AtomicU64,
    clock: CompileClock,
}

impl Shared {
    /// Run one job to completion: compile, measure, publish or stage.
    fn run_job(&self, job: CompileJob) {
        let key = job.key();
        let started = Instant::now();
        match job
            .pipeline
            .build_from_shapes(job.prog, job.vers, job.proc_num, job.arg, job.res)
        {
            Ok(compiled) => {
                let compiled = Arc::new(compiled);
                let compile_ns = match self.clock {
                    CompileClock::Wall => started.elapsed().as_nanos() as u64,
                    CompileClock::Modeled => modeled_compile_ns(&compiled),
                };
                self.completed.fetch_add(1, Ordering::Relaxed);
                match &self.staged {
                    Some(staged) => staged
                        .lock()
                        .expect("staging lock")
                        .push((key, compiled, compile_ns)),
                    None => {
                        self.cache.publish(key, compiled, compile_ns);
                        self.published.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Unsupported shapes (and any other pipeline failure) leave
            // the tier generic; the dispatch layer already serves it.
            Err(_) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut progress = self.progress.lock().expect("progress lock");
        progress.done += 1;
        self.idle.notify_all();
    }
}

/// Snapshot of the compile queue's lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecializerStats {
    /// Jobs ever enqueued.
    pub queued: u64,
    /// Jobs compiled successfully (published or staged).
    pub completed: u64,
    /// Jobs whose Tempo run failed (e.g. unsupported shape).
    pub failed: u64,
    /// Jobs currently queued or compiling.
    pub depth: u64,
    /// Deepest the queue ever got — the backlog a sizing decision cares
    /// about.
    pub depth_high_water: u64,
    /// Compiles actually made visible to callers (equals `completed` in
    /// immediate mode; lags it in staged mode until the next drain).
    pub published: u64,
}

/// A background compile thread pool publishing into a shared
/// [`StubCache`]. Dropping it drains the queue: the channel closes,
/// workers finish in-flight jobs, and the threads are joined.
pub struct Specializer {
    tx: Option<mpsc::Sender<CompileJob>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Specializer {
    /// Spawn `workers` compile threads (at least one) publishing into
    /// `cache`. `staged` selects the deterministic staged-publication
    /// mode; `clock` selects how compile durations are measured.
    pub fn new(cache: Arc<StubCache>, workers: usize, staged: bool, clock: CompileClock) -> Self {
        let shared = Arc::new(Shared {
            cache,
            staged: staged.then(|| Mutex::new(Vec::new())),
            progress: Mutex::new(Progress::default()),
            idle: Condvar::new(),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            depth_high_water: AtomicU64::new(0),
            published: AtomicU64::new(0),
            clock,
        });
        let (tx, rx) = mpsc::channel::<CompileJob>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let shared = shared.clone();
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only to dequeue, so compiles
                    // themselves run in parallel across workers.
                    let job = match rx.lock().expect("job queue lock").recv() {
                        Ok(job) => job,
                        Err(_) => return, // channel closed: pool shutting down
                    };
                    shared.run_job(job);
                })
            })
            .collect();
        Specializer {
            tx: Some(tx),
            workers,
            shared,
        }
    }

    /// Queue a compile. Returns immediately; the caller keeps serving
    /// Tier-0 until the result is published.
    pub fn enqueue(&self, job: CompileJob) {
        {
            let mut progress = self.shared.progress.lock().expect("progress lock");
            progress.queued += 1;
            let depth = progress.queued - progress.done;
            self.shared
                .depth_high_water
                .fetch_max(depth, Ordering::Relaxed);
        }
        self.tx
            .as_ref()
            .expect("specializer channel open while alive")
            .send(job)
            .expect("specializer workers alive while Specializer is");
    }

    /// Block until every enqueued job has finished compiling (staged
    /// results may still await [`Specializer::publish_staged`]).
    pub fn wait_idle(&self) {
        let mut progress = self.shared.progress.lock().expect("progress lock");
        while progress.done < progress.queued {
            progress = self
                .shared
                .idle
                .wait(progress)
                .expect("specializer idle wait");
        }
    }

    /// Staged mode: flip every parked compile into the cache (atomic per
    /// entry) and return how many went live. A no-op (0) in immediate
    /// mode.
    pub fn publish_staged(&self) -> usize {
        let Some(staged) = &self.shared.staged else {
            return 0;
        };
        let drained: Vec<_> = staged.lock().expect("staging lock").drain(..).collect();
        let n = drained.len();
        for (key, compiled, compile_ns) in drained {
            self.shared.cache.publish(key, compiled, compile_ns);
        }
        self.shared.published.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    /// Lifetime queue counters.
    pub fn stats(&self) -> SpecializerStats {
        let (queued, done) = {
            let p = self.shared.progress.lock().expect("progress lock");
            (p.queued, p.done)
        };
        SpecializerStats {
            queued,
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            depth: queued - done,
            depth_high_water: self.shared.depth_high_water.load(Ordering::Relaxed),
            published: self.shared.published.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Specializer {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the channel: workers drain and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDL: &str = r#"
        const MAXARR = 500;
        struct int_arr { int arr<MAXARR>; };
        program SPECPROG {
            version SPECVERS {
                int_arr ECHO(int_arr) = 1;
                int SUM(int_arr) = 2;
            } = 1;
        } = 0x20000202;
    "#;

    fn job(pinned: usize, proc_num: u32) -> CompileJob {
        let pipeline = ProcPipeline::new(pinned);
        let ((prog, vers, proc_num), arg, res) =
            pipeline.resolve_shapes(IDL, None, proc_num).unwrap();
        CompileJob {
            pipeline,
            prog,
            vers,
            proc_num,
            arg,
            res,
        }
    }

    #[test]
    fn immediate_mode_publishes_into_the_cache() {
        let cache = Arc::new(StubCache::new());
        let spec = Specializer::new(cache.clone(), 2, false, CompileClock::Modeled);
        spec.enqueue(job(16, 1));
        spec.enqueue(job(32, 1));
        spec.wait_idle();
        let s = spec.stats();
        assert_eq!((s.queued, s.completed, s.failed, s.depth), (2, 2, 0, 0));
        assert_eq!(s.published, 2);
        assert!(s.depth_high_water >= 1);
        let cs = cache.stats();
        assert_eq!((cs.entries, cs.misses), (2, 2));
        assert!(cache.peek(&job(16, 1).key()).is_some());
        assert!(cache.peek(&job(32, 1).key()).is_some());
    }

    #[test]
    fn staged_mode_defers_visibility_until_drained() {
        let cache = Arc::new(StubCache::new());
        let spec = Specializer::new(cache.clone(), 1, true, CompileClock::Modeled);
        spec.enqueue(job(16, 1));
        spec.wait_idle();
        assert_eq!(spec.stats().completed, 1);
        assert_eq!(spec.stats().published, 0, "compiled but not yet visible");
        assert!(cache.peek(&job(16, 1).key()).is_none());
        assert_eq!(spec.publish_staged(), 1);
        assert_eq!(spec.stats().published, 1);
        assert!(cache.peek(&job(16, 1).key()).is_some());
        assert_eq!(spec.publish_staged(), 0, "drain is idempotent");
    }

    #[test]
    fn idle_pool_reports_zeroed_stats() {
        // Unsupported shapes fail at resolve time — before a job exists —
        // so a well-formed job cannot fail its compile; the `failed`
        // counter guards the pipeline's error path regardless. An empty
        // pool must be immediately idle with zeroed counters.
        let cache = Arc::new(StubCache::new());
        let spec = Specializer::new(cache, 1, false, CompileClock::Modeled);
        spec.wait_idle();
        assert_eq!(spec.stats(), SpecializerStats::default());
    }

    #[test]
    fn compiles_record_cost_in_the_shared_cache() {
        let cache = Arc::new(StubCache::new());
        let spec = Specializer::new(cache.clone(), 1, false, CompileClock::Modeled);
        spec.enqueue(job(64, 2));
        spec.wait_idle();
        assert!(cache.stats().compile_ns_total >= 2_000_000);
    }

    #[test]
    fn drop_joins_cleanly_with_work_in_flight() {
        let cache = Arc::new(StubCache::new());
        let spec = Specializer::new(cache.clone(), 2, false, CompileClock::Modeled);
        for i in 0..8 {
            spec.enqueue(job(8 + i, 1));
        }
        drop(spec); // must drain and join without panicking
        assert_eq!(cache.stats().entries, 8, "drop drains the queue");
    }
}
