//! Mapping specializer statistics onto the paper's §3 categories.

use crate::cache::CacheStats;
use specrpc_rpc::bufpool::PoolStats;
use specrpc_tempo::spec::SpecReport;
use specrpc_xdr::OpCounts;

/// Wire-path allocation/copy profile of a measured client (from its
/// accumulated [`OpCounts`]): the paper's copy-elimination story in two
/// numbers — bytes that still move (the irreducible data) and heap
/// allocations (zero per call on the pooled zero-copy lane).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Bytes copied between argument memory and wire buffers.
    pub bytes_copied: u64,
    /// Wire-path heap allocations (pool misses + buffer/array growth).
    pub heap_allocs: u64,
    /// Calls the counters cover.
    pub calls: u64,
    /// Wire-buffer pool counters, when the deployment shares one
    /// [`specrpc_rpc::BufPool`]. Overflow drops are the misconfiguration
    /// signal: a cap smaller than the in-flight buffer count drops
    /// returns, and every drop resurfaces later as an allocating miss.
    pub pool: Option<PoolStats>,
}

/// What specialization eliminated, in the paper's vocabulary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// §3.1 — encode/decode dispatches eliminated (`x_op` switches in
    /// `xdr_long` and the `XDR_PUTLONG`/`XDR_GETLONG` vtable selections).
    pub dispatches_eliminated: u64,
    /// §3.2 — buffer-overflow checks eliminated (`x_handy` tests in
    /// `xdrmem_putlong`/`xdrmem_getlong`).
    pub overflow_checks_eliminated: u64,
    /// §3.3 — exit-status tests folded via static returns (the
    /// `if (!xdr_…) return FALSE` chains in stubs and header marshalers).
    pub status_tests_folded: u64,
    /// Micro-layer calls unfolded (inlined) into the residual.
    pub calls_unfolded: u64,
    /// Loop iterations unrolled.
    pub loop_iters_unrolled: u64,
    /// Dynamic guards kept in the residual (reply validation, §6.2
    /// `inlen`).
    pub dynamic_guards: u64,
    /// Residual statement count.
    pub residual_stmts: usize,
    /// Stub-cache effectiveness, when the stubs came through a
    /// [`crate::cache::StubCache`].
    pub cache: Option<CacheStats>,
    /// Requests dispatched per worker thread, when the service ran under
    /// [`crate::SpecService::serve_threaded`].
    pub threads: Option<Vec<u64>>,
    /// Events processed per reactor worker, when the service ran under
    /// [`crate::SpecService::serve_event`].
    pub events: Option<Vec<u64>>,
    /// Wire-path bytes-copied / allocs-per-call profile, when measured.
    pub wire: Option<WireStats>,
}

impl Summary {
    /// Classify a raw report.
    pub fn from_report(r: &SpecReport) -> Summary {
        let dispatches =
            r.folds_in("xdr_long") + r.folds_in("XDR_PUTLONG") + r.folds_in("XDR_GETLONG");
        let overflow = r.folds_in("xdrmem_putlong") + r.folds_in("xdrmem_getlong");
        let status = r.static_ifs_folded - dispatches - overflow;
        Summary {
            dispatches_eliminated: dispatches,
            overflow_checks_eliminated: overflow,
            status_tests_folded: status,
            calls_unfolded: r.calls_unfolded,
            loop_iters_unrolled: r.loop_iters_unrolled,
            dynamic_guards: r.dynamic_ifs_residualized,
            residual_stmts: r.residual_stmts,
            cache: None,
            threads: None,
            events: None,
            wire: None,
        }
    }

    /// Attach stub-cache counters (how many Tempo runs the cache saved).
    pub fn with_cache(mut self, stats: CacheStats) -> Summary {
        self.cache = Some(stats);
        self
    }

    /// Attach per-worker dispatch counts from a threaded deployment
    /// ([`crate::service::ThreadedService::per_thread_dispatches`]).
    pub fn with_threads(mut self, per_thread: Vec<u64>) -> Summary {
        self.threads = Some(per_thread);
        self
    }

    /// Attach per-worker event-loop throughput counts from an
    /// event-driven deployment
    /// ([`crate::service::EventService::per_worker_events`]).
    pub fn with_events(mut self, per_worker: Vec<u64>) -> Summary {
        self.events = Some(per_worker);
        self
    }

    /// Attach a client's wire-path profile: `counts` accumulated over
    /// `calls` calls (e.g. `SpecClient::counts` / `SpecClient::calls`),
    /// plus — when the deployment shares a wire-buffer pool — that
    /// pool's counters so cap misconfiguration (overflow drops) is
    /// visible next to the allocs-per-call number it inflates.
    pub fn with_wire(mut self, counts: OpCounts, calls: u64, pool: Option<PoolStats>) -> Summary {
        self.wire = Some(WireStats {
            bytes_copied: counts.mem_moves,
            heap_allocs: counts.heap_allocs,
            calls,
            pool,
        });
        self
    }

    /// Render as the report block examples print.
    pub fn render(&self) -> String {
        let mut text = format!(
            "  §3.1 dispatches eliminated:     {}\n\
             \u{20} §3.2 overflow checks removed:   {}\n\
             \u{20} §3.3 status tests folded:       {}\n\
             \u{20} calls unfolded (inlined):       {}\n\
             \u{20} loop iterations unrolled:       {}\n\
             \u{20} dynamic guards kept (§3.4):     {}\n\
             \u{20} residual statements:            {}",
            self.dispatches_eliminated,
            self.overflow_checks_eliminated,
            self.status_tests_folded,
            self.calls_unfolded,
            self.loop_iters_unrolled,
            self.dynamic_guards,
            self.residual_stmts,
        );
        if let Some(c) = self.cache {
            text.push_str(&format!(
                "\n\u{20} stub cache:                     {} hit(s), {} miss(es), {} entr{}",
                c.hits,
                c.misses,
                c.entries,
                if c.entries == 1 { "y" } else { "ies" },
            ));
        }
        if let Some(t) = &self.threads {
            let total: u64 = t.iter().sum();
            let per: Vec<String> = t.iter().map(u64::to_string).collect();
            text.push_str(&format!(
                "\n\u{20} threaded dispatch:              {} across {} worker(s) [{}]",
                total,
                t.len(),
                per.join(", "),
            ));
        }
        if let Some(e) = &self.events {
            let total: u64 = e.iter().sum();
            let per: Vec<String> = e.iter().map(u64::to_string).collect();
            text.push_str(&format!(
                "\n\u{20} event loop:                     {} event(s) across {} worker(s) [{}]",
                total,
                e.len(),
                per.join(", "),
            ));
        }
        if let Some(w) = self.wire {
            let per_call = w.heap_allocs as f64 / w.calls.max(1) as f64;
            text.push_str(&format!(
                "\n\u{20} wire path:                      {} B copied, {} alloc(s) over {} call(s) ({per_call:.2} allocs/call)",
                w.bytes_copied, w.heap_allocs, w.calls,
            ));
            if let Some(p) = w.pool {
                text.push_str(&format!(
                    "\n\u{20} buffer pool:                    {} hit(s), {} miss(es), {} overflow drop(s)",
                    p.hits, p.misses, p.overflow_drops,
                ));
            }
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::echo::build_echo_proc;

    #[test]
    fn echo_encode_summary_has_all_categories() {
        let n = 100;
        let proc_ = build_echo_proc(n, None).unwrap();
        let s = Summary::from_report(&proc_.client_encode.report);
        // One dispatch chain per element plus the ten header words.
        assert!(s.dispatches_eliminated >= (n as u64) * 2, "{s:?}");
        assert!(s.overflow_checks_eliminated >= n as u64 + 10, "{s:?}");
        assert!(s.status_tests_folded >= n as u64, "{s:?}");
        assert!(s.calls_unfolded >= (n as u64) * 4, "{s:?}");
        assert_eq!(s.loop_iters_unrolled, n as u64);
        assert_eq!(s.dynamic_guards, 0, "encode side has no dynamic guards");
    }

    #[test]
    fn echo_decode_summary_keeps_guards() {
        let proc_ = build_echo_proc(10, None).unwrap();
        let s = Summary::from_report(&proc_.client_decode.report);
        // inlen guard + mtype/stat/verf/astat checks + array length guard.
        assert!(s.dynamic_guards >= 5, "{s:?}");
    }

    #[test]
    fn render_mentions_sections() {
        let s = Summary {
            dispatches_eliminated: 7,
            ..Default::default()
        };
        let text = s.render();
        assert!(text.contains("§3.1"));
        assert!(text.contains('7'));
        assert!(!text.contains("stub cache"), "no cache line without stats");
    }

    #[test]
    fn render_includes_cache_stats_when_attached() {
        let s = Summary::default().with_cache(crate::cache::CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
        });
        let text = s.render();
        assert!(text.contains("stub cache"));
        assert!(text.contains("3 hit(s), 1 miss(es), 1 entry"));
        assert!(
            !text.contains("threaded dispatch"),
            "no thread line without stats"
        );
    }

    #[test]
    fn render_includes_per_thread_dispatches_when_attached() {
        let s = Summary::default().with_threads(vec![4, 3, 5]);
        let text = s.render();
        assert!(text.contains("threaded dispatch"));
        assert!(text.contains("12 across 3 worker(s) [4, 3, 5]"));
        assert!(!text.contains("wire path"), "no wire line without stats");
        assert!(!text.contains("event loop"), "no event line without stats");
    }

    #[test]
    fn render_includes_event_loop_throughput_when_attached() {
        let s = Summary::default().with_events(vec![7, 9]);
        let text = s.render();
        assert!(text.contains("event loop"));
        assert!(text.contains("16 event(s) across 2 worker(s) [7, 9]"));
    }

    #[test]
    fn render_includes_wire_profile_when_attached() {
        let mut counts = specrpc_xdr::OpCounts::new();
        counts.mem_moves = 32_000;
        counts.heap_allocs = 2;
        let s = Summary::default().with_wire(counts, 4, None);
        let text = s.render();
        assert!(text.contains("wire path"));
        assert!(text.contains("32000 B copied, 2 alloc(s) over 4 call(s) (0.50 allocs/call)"));
        assert!(!text.contains("buffer pool"), "no pool line without stats");
    }

    #[test]
    fn render_surfaces_pool_overflow_drops() {
        let counts = specrpc_xdr::OpCounts::new();
        let pool = specrpc_rpc::PoolStats {
            hits: 100,
            misses: 3,
            recycled: 90,
            overflow_drops: 13,
        };
        let text = Summary::default()
            .with_wire(counts, 10, Some(pool))
            .render();
        assert!(text.contains("buffer pool"));
        assert!(text.contains("100 hit(s), 3 miss(es), 13 overflow drop(s)"));
    }
}
