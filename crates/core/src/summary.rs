//! Mapping specializer statistics onto the paper's §3 categories, plus
//! the latency/throughput tables of the scaled serving scenarios.

use crate::adaptive::AdaptiveStats;
use crate::cache::CacheStats;
use specrpc_netsim::{LinkStats, SimTime};
use specrpc_rpc::bufpool::PoolStats;
use specrpc_tempo::spec::SpecReport;
use specrpc_xdr::OpCounts;

/// Minor buckets per power-of-two octave: latency values land in
/// logarithmic octaves subdivided 16 ways, bounding the relative
/// quantile error at ~6% while the whole histogram stays 8 KiB.
const SUB_BUCKETS: usize = 16;
const SUB_SHIFT: u32 = 4; // log2(SUB_BUCKETS)
const BUCKETS: usize = SUB_BUCKETS * 64;

/// A log-bucket histogram of virtual-time latencies: fixed memory for
/// any value range, deterministic, with percentile accessors. Built for
/// the open-loop scaling scenarios (a million recorded round trips cost
/// one array index each), replacing ad-hoc sort-the-samples percentile
/// math.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize; // exact below one full octave of minors
        }
        let octave = 63 - ns.leading_zeros(); // ns in [2^octave, 2^(octave+1))
        let minor = (ns >> (octave - SUB_SHIFT)) as usize & (SUB_BUCKETS - 1);
        (octave as usize) * SUB_BUCKETS + minor
    }

    /// The midpoint of a bucket's value range (what quantiles report).
    fn bucket_mid(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let octave = (index / SUB_BUCKETS) as u32;
        let minor = (index % SUB_BUCKETS) as u64;
        let step = 1u64 << (octave - SUB_SHIFT);
        let low = (1u64 << octave) + minor * step;
        low + step / 2
    }

    /// Record one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        let ns = latency.as_nanos();
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.max = self.max.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> SimTime {
        SimTime::from_nanos(self.max)
    }

    /// The latency at quantile `q` in `[0, 1]` (bucket midpoint, ~6%
    /// relative resolution). Zero when empty.
    pub fn quantile(&self, q: f64) -> SimTime {
        if self.total == 0 {
            return SimTime::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return SimTime::from_nanos(Self::bucket_mid(i).min(self.max));
            }
        }
        SimTime::from_nanos(self.max)
    }

    /// Median latency.
    pub fn p50(&self) -> SimTime {
        self.quantile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> SimTime {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> SimTime {
        self.quantile(0.999)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }
}

/// Wire-path allocation/copy profile of a measured client (from its
/// accumulated [`OpCounts`]): the paper's copy-elimination story in two
/// numbers — bytes that still move (the irreducible data) and heap
/// allocations (zero per call on the pooled zero-copy lane).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Bytes copied between argument memory and wire buffers.
    pub bytes_copied: u64,
    /// Wire-path heap allocations (pool misses + buffer/array growth).
    pub heap_allocs: u64,
    /// Calls the counters cover.
    pub calls: u64,
    /// Wire-buffer pool counters, when the deployment shares one
    /// [`specrpc_rpc::BufPool`]. Overflow drops are the misconfiguration
    /// signal: a cap smaller than the in-flight buffer count drops
    /// returns, and every drop resurfaces later as an allocating miss.
    pub pool: Option<PoolStats>,
    /// Link receive-queue accounting ([`Network::link_stats`]) under the
    /// bounded drop-tail model: deliveries the wire discarded at full
    /// queues, plus the deepest queue observed. Nonzero drops mean the
    /// offered load exceeded what the receive queues could absorb —
    /// every drop resurfaces as a client retransmission.
    ///
    /// [`Network::link_stats`]: specrpc_netsim::Network::link_stats
    pub link: Option<LinkStats>,
}

/// Availability profile of a chaos run: how the deployment behaved
/// while the fault schedule crashed, restarted, and partitioned its
/// endpoints. Availability is carried in basis points (1/100 of a
/// percent) so the summary stays `Eq` and renders byte-identically
/// across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosSummary {
    /// Calls attempted over the run.
    pub calls: u64,
    /// Calls that completed within the scenario's deadline.
    pub within_deadline: u64,
    /// Calls that errored outright (timed out, gave up, or were refused
    /// fast by open circuit breakers).
    pub failed: u64,
    /// `within_deadline / calls` in basis points (9_967 = 99.67%).
    pub availability_bp: u32,
    /// Virtual time from the primary's crash to the next completed
    /// call, when one completed after the crash at all.
    pub recovery: Option<SimTime>,
    /// Handler executions beyond one per completed call — the
    /// exactly-once → at-least-once erosion a restart's duplicate-cache
    /// amnesia (and failover re-sends) cause.
    pub extra_executions: u64,
    /// Times clients retargeted to a backup replica.
    pub failovers: u64,
    /// Circuit-breaker open transitions across all clients.
    pub breaker_trips: u64,
    /// Total endpoint downtime the chaos schedule inflicted.
    pub downtime: SimTime,
}

/// What specialization eliminated, in the paper's vocabulary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// §3.1 — encode/decode dispatches eliminated (`x_op` switches in
    /// `xdr_long` and the `XDR_PUTLONG`/`XDR_GETLONG` vtable selections).
    pub dispatches_eliminated: u64,
    /// §3.2 — buffer-overflow checks eliminated (`x_handy` tests in
    /// `xdrmem_putlong`/`xdrmem_getlong`).
    pub overflow_checks_eliminated: u64,
    /// §3.3 — exit-status tests folded via static returns (the
    /// `if (!xdr_…) return FALSE` chains in stubs and header marshalers).
    pub status_tests_folded: u64,
    /// Micro-layer calls unfolded (inlined) into the residual.
    pub calls_unfolded: u64,
    /// Loop iterations unrolled.
    pub loop_iters_unrolled: u64,
    /// Dynamic guards kept in the residual (reply validation, §6.2
    /// `inlen`).
    pub dynamic_guards: u64,
    /// Residual statement count.
    pub residual_stmts: usize,
    /// Stub-cache effectiveness, when the stubs came through a
    /// [`crate::cache::StubCache`].
    pub cache: Option<CacheStats>,
    /// Requests dispatched per worker thread, when the service ran under
    /// [`crate::SpecService::serve_threaded`].
    pub threads: Option<Vec<u64>>,
    /// Events processed per reactor worker, when the service ran under
    /// [`crate::SpecService::serve_event`].
    pub events: Option<Vec<u64>>,
    /// Events processed per shard, when the service ran under
    /// [`crate::SpecService::serve_sharded`] (per-shard throughput).
    pub shards: Option<Vec<u64>>,
    /// Virtual-time latency distribution, when the deployment recorded
    /// one (the open-loop scaling scenarios).
    pub latency: Option<LatencyHistogram>,
    /// Wire-path bytes-copied / allocs-per-call profile, when measured.
    pub wire: Option<WireStats>,
    /// Tiered-execution counters, when the deployment ran through an
    /// [`crate::AdaptiveRuntime`].
    pub adaptive: Option<AdaptiveStats>,
    /// Availability-under-faults profile, when the deployment ran under
    /// a chaos schedule ([`crate::run_chaos`]).
    pub chaos: Option<ChaosSummary>,
}

impl Summary {
    /// Classify a raw report.
    pub fn from_report(r: &SpecReport) -> Summary {
        let dispatches =
            r.folds_in("xdr_long") + r.folds_in("XDR_PUTLONG") + r.folds_in("XDR_GETLONG");
        let overflow = r.folds_in("xdrmem_putlong") + r.folds_in("xdrmem_getlong");
        let status = r.static_ifs_folded - dispatches - overflow;
        Summary {
            dispatches_eliminated: dispatches,
            overflow_checks_eliminated: overflow,
            status_tests_folded: status,
            calls_unfolded: r.calls_unfolded,
            loop_iters_unrolled: r.loop_iters_unrolled,
            dynamic_guards: r.dynamic_ifs_residualized,
            residual_stmts: r.residual_stmts,
            cache: None,
            threads: None,
            events: None,
            shards: None,
            latency: None,
            wire: None,
            adaptive: None,
            chaos: None,
        }
    }

    /// Attach stub-cache counters (how many Tempo runs the cache saved).
    pub fn with_cache(mut self, stats: CacheStats) -> Summary {
        self.cache = Some(stats);
        self
    }

    /// Attach per-worker dispatch counts from a threaded deployment
    /// ([`crate::service::ThreadedService::per_thread_dispatches`]).
    pub fn with_threads(mut self, per_thread: Vec<u64>) -> Summary {
        self.threads = Some(per_thread);
        self
    }

    /// Attach per-worker event-loop throughput counts from an
    /// event-driven deployment
    /// ([`crate::service::EventService::per_worker_events`]).
    pub fn with_events(mut self, per_worker: Vec<u64>) -> Summary {
        self.events = Some(per_worker);
        self
    }

    /// Attach per-shard event throughput counts from a sharded
    /// deployment
    /// ([`crate::service::ShardedService::per_shard_events`]).
    pub fn with_shards(mut self, per_shard: Vec<u64>) -> Summary {
        self.shards = Some(per_shard);
        self
    }

    /// Attach a virtual-time latency distribution (p50/p99/p999 lines in
    /// the report).
    pub fn with_latency(mut self, hist: LatencyHistogram) -> Summary {
        self.latency = Some(hist);
        self
    }

    /// Attach a client's wire-path profile: `counts` accumulated over
    /// `calls` calls (e.g. `SpecClient::counts` / `SpecClient::calls`),
    /// plus — when the deployment shares a wire-buffer pool — that
    /// pool's counters so cap misconfiguration (overflow drops) is
    /// visible next to the allocs-per-call number it inflates, and —
    /// when the network ran with bounded drop-tail receive queues — the
    /// link's queue-drop / high-water accounting
    /// (`Network::link_stats`).
    pub fn with_wire(
        mut self,
        counts: OpCounts,
        calls: u64,
        pool: Option<PoolStats>,
        link: Option<LinkStats>,
    ) -> Summary {
        self.wire = Some(WireStats {
            bytes_copied: counts.mem_moves,
            heap_allocs: counts.heap_allocs,
            calls,
            pool,
            link,
        });
        self
    }

    /// Attach tiered-execution counters from an adaptive deployment
    /// ([`crate::AdaptiveRuntime::stats`]): tier-0/tier-1 call counts,
    /// compiles queued/completed, hot-swaps, compile-queue depth
    /// high-water, total compile cost, and evictions by cost class.
    pub fn with_adaptive(mut self, stats: AdaptiveStats) -> Summary {
        self.adaptive = Some(stats);
        self
    }

    /// Attach an availability-under-faults profile from a chaos run
    /// ([`crate::run_chaos`]): deadline-availability in basis points,
    /// crash-recovery time, duplicate handler executions, and the
    /// failover/breaker activity that kept the deployment serving.
    pub fn with_chaos(mut self, stats: ChaosSummary) -> Summary {
        self.chaos = Some(stats);
        self
    }

    /// Render as the report block examples print.
    pub fn render(&self) -> String {
        let mut text = format!(
            "  §3.1 dispatches eliminated:     {}\n\
             \u{20} §3.2 overflow checks removed:   {}\n\
             \u{20} §3.3 status tests folded:       {}\n\
             \u{20} calls unfolded (inlined):       {}\n\
             \u{20} loop iterations unrolled:       {}\n\
             \u{20} dynamic guards kept (§3.4):     {}\n\
             \u{20} residual statements:            {}",
            self.dispatches_eliminated,
            self.overflow_checks_eliminated,
            self.status_tests_folded,
            self.calls_unfolded,
            self.loop_iters_unrolled,
            self.dynamic_guards,
            self.residual_stmts,
        );
        if let Some(c) = self.cache {
            text.push_str(&format!(
                "\n\u{20} stub cache:                     {} hit(s), {} miss(es), {} entr{}",
                c.hits,
                c.misses,
                c.entries,
                if c.entries == 1 { "y" } else { "ies" },
            ));
            if c.evictions > 0 {
                text.push_str(&format!(", {} evicted", c.evictions));
            }
            if c.compile_ns_total > 0 {
                text.push_str(&format!(
                    "\n\u{20} compile cost:                   {} total (the measurement eviction weighs)",
                    SimTime::from_nanos(c.compile_ns_total),
                ));
            }
        }
        if let Some(a) = self.adaptive {
            text.push_str(&format!(
                "\n\u{20} adaptive tiers:                 {} tier-0 / {} tier-1 call(s), {} hot swap(s)",
                a.tier0_calls, a.tier1_calls, a.hot_swaps,
            ));
            text.push_str(&format!(
                "\n\u{20} background compiles:            {} queued, {} completed, queue high-water {}",
                a.compiles_queued, a.compiles_completed, a.compile_queue_high_water,
            ));
            let by = a.evictions_by_class;
            if by.iter().sum::<u64>() > 0 {
                text.push_str(&format!(
                    "\n\u{20} evictions by cost class:        cheap {}, moderate {}, expensive {}",
                    by[0], by[1], by[2],
                ));
            }
        }
        if let Some(t) = &self.threads {
            let total: u64 = t.iter().sum();
            let per: Vec<String> = t.iter().map(u64::to_string).collect();
            text.push_str(&format!(
                "\n\u{20} threaded dispatch:              {} across {} worker(s) [{}]",
                total,
                t.len(),
                per.join(", "),
            ));
        }
        if let Some(e) = &self.events {
            let total: u64 = e.iter().sum();
            let per: Vec<String> = e.iter().map(u64::to_string).collect();
            text.push_str(&format!(
                "\n\u{20} event loop:                     {} event(s) across {} worker(s) [{}]",
                total,
                e.len(),
                per.join(", "),
            ));
        }
        if let Some(s) = &self.shards {
            let total: u64 = s.iter().sum();
            let per: Vec<String> = s.iter().map(u64::to_string).collect();
            text.push_str(&format!(
                "\n\u{20} shard map:                      {} event(s) across {} shard(s) [{}]",
                total,
                s.len(),
                per.join(", "),
            ));
        }
        if let Some(l) = &self.latency {
            text.push_str(&format!(
                "\n\u{20} latency (virtual time):         p50 {}, p99 {}, p999 {}, max {} over {} sample(s)",
                l.p50(),
                l.p99(),
                l.p999(),
                l.max(),
                l.count(),
            ));
        }
        if let Some(w) = self.wire {
            let per_call = w.heap_allocs as f64 / w.calls.max(1) as f64;
            text.push_str(&format!(
                "\n\u{20} wire path:                      {} B copied, {} alloc(s) over {} call(s) ({per_call:.2} allocs/call)",
                w.bytes_copied, w.heap_allocs, w.calls,
            ));
            if let Some(p) = w.pool {
                text.push_str(&format!(
                    "\n\u{20} buffer pool:                    {} hit(s), {} miss(es), {} overflow drop(s)",
                    p.hits, p.misses, p.overflow_drops,
                ));
            }
            if let Some(l) = w.link {
                text.push_str(&format!(
                    "\n\u{20} link queues:                    {} drop(s), depth high-water {}",
                    l.queue_drops, l.queue_depth_high_water,
                ));
                text.push_str(&format!(
                    "\n\u{20} link packets:                   {} datagram(s) in {} wire fragment(s)",
                    l.datagrams, l.fragments,
                ));
            }
        }
        if let Some(c) = self.chaos {
            text.push_str(&format!(
                "\n\u{20} chaos availability:             {}.{:02}% ({}/{} within deadline, {} failed)",
                c.availability_bp / 100,
                c.availability_bp % 100,
                c.within_deadline,
                c.calls,
                c.failed,
            ));
            match c.recovery {
                Some(r) => text.push_str(&format!(
                    "\n\u{20} crash recovery:                 {r} after the crash, downtime {}",
                    c.downtime,
                )),
                None => text.push_str(&format!(
                    "\n\u{20} crash recovery:                 never recovered, downtime {}",
                    c.downtime,
                )),
            }
            text.push_str(&format!(
                "\n\u{20} at-least-once erosion:          {} duplicate execution(s), {} failover(s), {} breaker trip(s)",
                c.extra_executions, c.failovers, c.breaker_trips,
            ));
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::echo::build_echo_proc;

    #[test]
    fn echo_encode_summary_has_all_categories() {
        let n = 100;
        let proc_ = build_echo_proc(n, None).unwrap();
        let s = Summary::from_report(&proc_.client_encode.report);
        // One dispatch chain per element plus the ten header words.
        assert!(s.dispatches_eliminated >= (n as u64) * 2, "{s:?}");
        assert!(s.overflow_checks_eliminated >= n as u64 + 10, "{s:?}");
        assert!(s.status_tests_folded >= n as u64, "{s:?}");
        assert!(s.calls_unfolded >= (n as u64) * 4, "{s:?}");
        assert_eq!(s.loop_iters_unrolled, n as u64);
        assert_eq!(s.dynamic_guards, 0, "encode side has no dynamic guards");
    }

    #[test]
    fn echo_decode_summary_keeps_guards() {
        let proc_ = build_echo_proc(10, None).unwrap();
        let s = Summary::from_report(&proc_.client_decode.report);
        // inlen guard + mtype/stat/verf/astat checks + array length guard.
        assert!(s.dynamic_guards >= 5, "{s:?}");
    }

    #[test]
    fn render_mentions_sections() {
        let s = Summary {
            dispatches_eliminated: 7,
            ..Default::default()
        };
        let text = s.render();
        assert!(text.contains("§3.1"));
        assert!(text.contains('7'));
        assert!(!text.contains("stub cache"), "no cache line without stats");
    }

    #[test]
    fn render_includes_cache_stats_when_attached() {
        let s = Summary::default().with_cache(crate::cache::CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            evictions: 0,
            ..Default::default()
        });
        let text = s.render();
        assert!(text.contains("stub cache"));
        assert!(text.contains("3 hit(s), 1 miss(es), 1 entry"));
        assert!(
            !text.contains("threaded dispatch"),
            "no thread line without stats"
        );
    }

    #[test]
    fn render_includes_per_thread_dispatches_when_attached() {
        let s = Summary::default().with_threads(vec![4, 3, 5]);
        let text = s.render();
        assert!(text.contains("threaded dispatch"));
        assert!(text.contains("12 across 3 worker(s) [4, 3, 5]"));
        assert!(!text.contains("wire path"), "no wire line without stats");
        assert!(!text.contains("event loop"), "no event line without stats");
    }

    #[test]
    fn render_includes_event_loop_throughput_when_attached() {
        let s = Summary::default().with_events(vec![7, 9]);
        let text = s.render();
        assert!(text.contains("event loop"));
        assert!(text.contains("16 event(s) across 2 worker(s) [7, 9]"));
    }

    #[test]
    fn render_includes_chaos_lines_when_attached() {
        let s = Summary::default().with_chaos(ChaosSummary {
            calls: 96,
            within_deadline: 95,
            failed: 0,
            availability_bp: 9_895,
            recovery: Some(SimTime::from_millis(6)),
            extra_executions: 1,
            failovers: 1,
            breaker_trips: 2,
            downtime: SimTime::from_millis(30),
        });
        let text = s.render();
        assert!(text.contains("chaos availability"));
        assert!(text.contains("98.95% (95/96 within deadline, 0 failed)"));
        assert!(text.contains("6.000ms after the crash"), "{text}");
        assert!(text.contains("1 duplicate execution(s), 1 failover(s), 2 breaker trip(s)"));

        let never = Summary::default().with_chaos(ChaosSummary::default());
        assert!(never.render().contains("never recovered"));
    }

    #[test]
    fn histogram_quantiles_land_in_the_right_octaves() {
        let mut h = LatencyHistogram::new();
        // 10_000 samples at ~100µs, 90 at ~1ms, 10 at ~10ms: p50 and p99
        // land in the 100µs mass, p999 in the 1ms tail.
        for _ in 0..10_000 {
            h.record(SimTime::from_micros(100));
        }
        for _ in 0..90 {
            h.record(SimTime::from_millis(1));
        }
        for _ in 0..10 {
            h.record(SimTime::from_millis(10));
        }
        assert_eq!(h.count(), 10_100);
        let (p50, p99, p999) = (h.p50(), h.p99(), h.p999());
        // Log-bucket resolution: within ~6% of the true value.
        let near = |got: SimTime, want_ns: u64| {
            let g = got.as_nanos() as f64;
            let w = want_ns as f64;
            (g - w).abs() / w < 0.07
        };
        assert!(near(p50, 100_000), "p50 {p50}");
        assert!(near(p99, 100_000), "p99 {p99}");
        assert!(near(p999, 1_000_000), "p999 {p999}");
        assert_eq!(h.max(), SimTime::from_millis(10), "max is exact");
        assert_eq!(h.quantile(1.0), SimTime::from_millis(10));
    }

    #[test]
    fn histogram_is_deterministic_and_mergeable() {
        let build = || {
            let mut h = LatencyHistogram::new();
            for i in 0..10_000u64 {
                h.record(SimTime::from_nanos(50_000 + i * 37));
            }
            h
        };
        assert_eq!(build(), build(), "same samples, same histogram");
        let mut merged = build();
        merged.merge(&build());
        assert_eq!(merged.count(), 20_000);
        assert_eq!(
            merged.p50(),
            build().p50(),
            "merge of equals keeps quantiles"
        );
    }

    #[test]
    fn histogram_handles_empty_and_tiny_values() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), SimTime::ZERO);
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_nanos(3));
        assert_eq!(h.p50(), SimTime::from_nanos(3), "sub-octave values exact");
    }

    #[test]
    fn render_includes_shard_and_latency_lines_when_attached() {
        let mut hist = LatencyHistogram::new();
        hist.record(SimTime::from_micros(120));
        let text = Summary::default()
            .with_shards(vec![5, 6, 7, 8])
            .with_latency(hist)
            .render();
        assert!(text.contains("shard map"));
        assert!(text.contains("26 event(s) across 4 shard(s) [5, 6, 7, 8]"));
        assert!(text.contains("latency (virtual time)"));
        assert!(text.contains("p999"));
    }

    #[test]
    fn render_mentions_cache_evictions_only_when_nonzero() {
        let evicting = Summary::default().with_cache(crate::cache::CacheStats {
            hits: 1,
            misses: 4,
            entries: 2,
            evictions: 2,
            ..Default::default()
        });
        assert!(evicting.render().contains("2 evicted"));
    }

    #[test]
    fn render_includes_adaptive_tiers_when_attached() {
        let s = Summary::default().with_adaptive(crate::adaptive::AdaptiveStats {
            tier0_calls: 5,
            tier1_calls: 95,
            hot_swaps: 3,
            compiles_queued: 4,
            compiles_completed: 4,
            compile_queue_high_water: 2,
            ..Default::default()
        });
        let text = s.render();
        assert!(text.contains("adaptive tiers"));
        assert!(text.contains("5 tier-0 / 95 tier-1 call(s), 3 hot swap(s)"));
        assert!(text.contains("4 queued, 4 completed, queue high-water 2"));
        assert!(
            !text.contains("evictions by cost class"),
            "no class line without evictions"
        );
    }

    #[test]
    fn render_breaks_evictions_out_by_cost_class() {
        let s = Summary::default().with_adaptive(crate::adaptive::AdaptiveStats {
            evictions_by_class: [7, 1, 0],
            ..Default::default()
        });
        assert!(s.render().contains("cheap 7, moderate 1, expensive 0"));
    }

    #[test]
    fn render_prices_the_cache_compile_cost_when_measured() {
        let s = Summary::default().with_cache(crate::cache::CacheStats {
            hits: 2,
            misses: 2,
            entries: 2,
            evictions: 0,
            compile_ns_total: 8_000_000,
            ..Default::default()
        });
        let text = s.render();
        assert!(text.contains("compile cost"), "{text}");
        assert!(text.contains("8.000ms"), "{text}");
    }

    #[test]
    fn render_includes_wire_profile_when_attached() {
        let mut counts = specrpc_xdr::OpCounts::new();
        counts.mem_moves = 32_000;
        counts.heap_allocs = 2;
        let s = Summary::default().with_wire(counts, 4, None, None);
        let text = s.render();
        assert!(text.contains("wire path"));
        assert!(text.contains("32000 B copied, 2 alloc(s) over 4 call(s) (0.50 allocs/call)"));
        assert!(!text.contains("buffer pool"), "no pool line without stats");
        assert!(!text.contains("link queues"), "no link line without stats");
    }

    #[test]
    fn render_surfaces_link_queue_drops() {
        let counts = specrpc_xdr::OpCounts::new();
        let link = LinkStats {
            queue_drops: 42,
            queue_depth_high_water: 9,
            datagrams: 120,
            fragments: 130,
        };
        let text = Summary::default()
            .with_wire(counts, 10, None, Some(link))
            .render();
        assert!(text.contains("link queues"));
        assert!(text.contains("42 drop(s), depth high-water 9"));
        assert!(text.contains("120 datagram(s) in 130 wire fragment(s)"));
    }

    #[test]
    fn render_surfaces_pool_overflow_drops() {
        let counts = specrpc_xdr::OpCounts::new();
        let pool = specrpc_rpc::PoolStats {
            hits: 100,
            misses: 3,
            recycled: 90,
            overflow_drops: 13,
        };
        let text = Summary::default()
            .with_wire(counts, 10, Some(pool), None)
            .render();
        assert!(text.contains("buffer pool"));
        assert!(text.contains("100 hit(s), 3 miss(es), 13 overflow drop(s)"));
    }
}
