//! The transport-agnostic specialized client.
//!
//! The specialized path replaces header + argument marshaling with
//! compiled residual stubs but keeps the protocol machinery (xid
//! allocation, retransmission, reply matching) — specialization removes
//! interpretation, not the protocol. [`SpecClient`] is generic over any
//! [`Transport`] (UDP with retransmission, record-marked TCP), and every
//! dynamic guard failure falls back to the generic layered path,
//! preserving the original semantics (§6.2).

use crate::cache::StubCache;
use crate::generic::decode_shape_generic;
use crate::pipeline::{CompiledProc, PipelineError, ProcPipeline};
use specrpc_rpc::error::RpcError;
use specrpc_rpc::msg::ReplyHeader;
use specrpc_rpc::transport::Transport;
use specrpc_rpcgen::sunlib::reply_fields;
use specrpc_tempo::compile::{run_decode, run_encode_with_xid, Outcome, StubArgs};
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::{OpCounts, WireBuf, XdrStream};
use std::sync::Arc;

/// Which path served a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathUsed {
    /// The compiled specialized stubs.
    Fast,
    /// The generic micro-layer path (guard fallback).
    GenericFallback,
}

/// What a client should specialize: an IDL procedure plus its
/// specialization context (the paper's per-size pinning).
#[derive(Debug, Clone)]
pub struct ProcSpec {
    idl: String,
    program: Option<String>,
    proc_num: u32,
    pinned_len: usize,
}

impl ProcSpec {
    /// Specialize procedure `proc_num` of the first program in `idl`.
    pub fn new(idl: impl Into<String>, proc_num: u32) -> ProcSpec {
        ProcSpec {
            idl: idl.into(),
            program: None,
            proc_num,
            pinned_len: 0,
        }
    }

    /// Select a program by name (default: the IDL's first program).
    pub fn program(mut self, name: impl Into<String>) -> ProcSpec {
        self.program = Some(name.into());
        self
    }

    /// Pin counted arrays to `n` elements (the per-size context).
    pub fn pinned(mut self, n: usize) -> ProcSpec {
        self.pinned_len = n;
        self
    }

    /// Compile this spec (optionally chunked, optionally through a
    /// shared cache).
    pub fn compile(
        &self,
        chunk: Option<usize>,
        cache: Option<&StubCache>,
    ) -> Result<Arc<CompiledProc>, PipelineError> {
        let mut pipeline = ProcPipeline::new(self.pinned_len);
        pipeline.chunk = chunk;
        match cache {
            Some(cache) => cache.get_or_compile_idl(
                &pipeline,
                &self.idl,
                self.program.as_deref(),
                self.proc_num,
            ),
            None => pipeline
                .build_from_idl(&self.idl, self.program.as_deref(), self.proc_num)
                .map(Arc::new),
        }
    }
}

enum StubSource {
    Compiled(Arc<CompiledProc>),
    Spec(ProcSpec),
}

/// Fluent constructor for [`SpecClient`]:
/// `SpecClient::builder(transport).proc(spec).chunk(250).build()`.
pub struct SpecClientBuilder<T: Transport> {
    transport: T,
    source: Option<StubSource>,
    chunk: Option<usize>,
    cache: Option<Arc<StubCache>>,
}

impl<T: Transport> SpecClientBuilder<T> {
    /// Specialize the procedure described by `spec`.
    pub fn proc(mut self, spec: ProcSpec) -> Self {
        self.source = Some(StubSource::Spec(spec));
        self
    }

    /// Use an already-compiled stub set (shared with a server or another
    /// client). `chunk`/`cache` settings do not apply to it.
    pub fn compiled(mut self, proc_: Arc<CompiledProc>) -> Self {
        self.source = Some(StubSource::Compiled(proc_));
        self
    }

    /// Bound loop unrolling to `chunk`-element pieces (Table 4).
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk);
        self
    }

    /// Resolve stubs through `cache` instead of always running Tempo.
    pub fn cache(mut self, cache: Arc<StubCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Compile (or fetch) the stubs and wrap the transport.
    pub fn build(self) -> Result<SpecClient<T>, PipelineError> {
        let proc_ = match self.source.ok_or(PipelineError::NoProcGiven)? {
            StubSource::Compiled(p) => p,
            StubSource::Spec(spec) => spec.compile(self.chunk, self.cache.as_deref())?,
        };
        Ok(SpecClient::from_parts(self.transport, proc_))
    }
}

/// A specialized RPC client for one procedure: compiled stubs over the
/// shared transaction layer of any [`Transport`], with a generic decoder
/// fallback.
///
/// The request lane is zero-copy and allocation-free in steady state: the
/// compiled stub stamps header and arguments in **one pass** directly into
/// a [`WireBuf`] that is preallocated once at the stub's exact wire length
/// and rewound per call, the transport borrows those bytes (copying only
/// into the pooled datagram it actually transmits), and consumed reply
/// buffers are recycled back to the transport's pool. `counts.heap_allocs`
/// accounts every wire-path allocation — zero per call once warm, which
/// `tests/zero_copy.rs` pins.
pub struct SpecClient<T: Transport> {
    transport: T,
    proc_: Arc<CompiledProc>,
    /// Reusable request image (exact wire length, rewound per call).
    req: WireBuf,
    /// Per-slot request images for batched calls: slot `i` holds batch
    /// position `i`'s wire image, preallocated on first use and rewound
    /// every batch (one `WireBuf` scratch per slot).
    batch_req: Vec<WireBuf>,
    /// Reused xid scratch for batched calls.
    batch_xids: Vec<u32>,
    /// Wire-allocation watermark for the nonblocking (async-adapter)
    /// lane: [`SpecClient::call_begin`]/[`SpecClient::batch_begin`] mark
    /// it, [`SpecClient::call_finish`] folds the delta since the mark
    /// into `counts.heap_allocs` and re-marks.
    async_allocs_mark: u64,
    /// Stub-op, byte, and allocation counts from specialized marshaling
    /// (generic fallback decoding accumulates here too).
    pub counts: OpCounts,
    /// Calls served by the fast path.
    pub fast_calls: u64,
    /// Calls that fell back to the generic decoder.
    pub fallback_calls: u64,
    /// Calls performed (for allocs-per-call reporting).
    pub calls: u64,
    /// One-way calls issued through [`SpecClient::call_oneway`].
    pub oneway_calls: u64,
}

impl<T: Transport> SpecClient<T> {
    /// Start building a client over `transport`.
    pub fn builder(transport: T) -> SpecClientBuilder<T> {
        SpecClientBuilder {
            transport,
            source: None,
            chunk: None,
            cache: None,
        }
    }

    /// Wrap a transport with already-compiled stubs.
    pub fn from_parts(transport: T, proc_: Arc<CompiledProc>) -> Self {
        SpecClient {
            transport,
            proc_,
            req: WireBuf::new(),
            batch_req: Vec::new(),
            batch_xids: Vec::new(),
            async_allocs_mark: 0,
            counts: OpCounts::new(),
            fast_calls: 0,
            fallback_calls: 0,
            calls: 0,
            oneway_calls: 0,
        }
    }

    /// The compiled stub set this client runs.
    pub fn compiled(&self) -> &Arc<CompiledProc> {
        &self.proc_
    }

    /// Access the underlying transport (timeout tuning).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Perform the call: `args` carries the user argument slots (scalars
    /// *after* the xid slot 0, arrays from 0) — build it with
    /// [`SpecClient::args`]. Returns the result slots and which path
    /// decoded the reply.
    ///
    /// Allocates fresh result slots per call; steady-state callers that
    /// want the allocation-free lane use [`SpecClient::call_into`].
    pub fn call(&mut self, args: &StubArgs) -> Result<(StubArgs, PathUsed), RpcError> {
        let mut out = StubArgs::default();
        let path = self.call_into(args, &mut out)?;
        Ok((out, path))
    }

    /// [`SpecClient::call`] decoding into caller-provided result slots,
    /// reusing their capacity: with a warm `out` and a warm transport
    /// pool, a round trip performs zero wire-path heap allocations
    /// (`counts.heap_allocs` stays flat).
    ///
    /// Accounting caveat: transport allocations are attributed by
    /// pool-counter delta across the call, so when several clients share
    /// one `BufPool` *and* run concurrently, misses provoked by a peer
    /// inside this call's window land in this client's counts. Per-client
    /// readings are exact for the single-driver deployments the tests
    /// measure; the aggregate across clients is exact always.
    pub fn call_into(&mut self, args: &StubArgs, out: &mut StubArgs) -> Result<PathUsed, RpcError> {
        let allocs_before = self.transport.wire_allocs();
        self.calls += 1;
        let result = self.call_inner(args, out);
        // The pool misses this call's window provoked are its wire
        // allocations — folded on success *and* failure (a timed-out
        // retransmit storm allocates just as physically).
        self.counts.heap_allocs += self.transport.wire_allocs() - allocs_before;
        result
    }

    fn call_inner(&mut self, args: &StubArgs, out: &mut StubArgs) -> Result<PathUsed, RpcError> {
        let xid = self.transport.next_xid();
        Self::encode_into(&self.proc_, &mut self.req, args, xid, &mut self.counts)?;
        let reply = self.transport.call(self.req.bytes(), xid)?;
        let result = self.decode_reply(&reply, out);
        // The consumed reply buffer feeds the transport's pool.
        self.transport.recycle(reply);
        result
    }

    /// Sun-style **one-way** call: encode through the compiled stub and
    /// hand the request to [`Transport::call_oneway`] — no reply is
    /// awaited, decoded, or returned. Over a coalescing UDP transport
    /// (`ClntUdp::with_coalescing`) the call is *queued* into an
    /// MTU-sized envelope and flushed by MTU fill, the linger bound, or
    /// the next synchronous call, whose reply acknowledges the whole
    /// pipeline; other transports degrade to a blocking call with the
    /// reply discarded. The one-way trade is the classic batch-mode one:
    /// at-most-once execution, with loss only detected by the next
    /// synchronous call in the stream.
    ///
    /// ```
    /// use specrpc::{ProcSpec, SpecClient, SpecService, StubCache};
    /// use specrpc_netsim::net::{Network, NetworkConfig};
    /// use specrpc_netsim::SimTime;
    /// use specrpc_rpc::{ClntUdp, CoalescePolicy};
    /// use specrpc_tempo::compile::StubArgs;
    /// use std::sync::Arc;
    ///
    /// const IDL: &str = r#"
    ///     program INCPROG {
    ///         version INCVERS { int INC(int) = 1; } = 1;
    ///     } = 0x20000779;
    /// "#;
    ///
    /// let cache = Arc::new(StubCache::new());
    /// let proc_ = ProcSpec::new(IDL, 1).compile(None, Some(&cache)).unwrap();
    ///
    /// let net = Network::new(NetworkConfig::lan(), 1);
    /// SpecService::new()
    ///     .proc(proc_.clone(), |args: &StubArgs| {
    ///         let v = *args.scalars.last().unwrap();
    ///         StubArgs::new(vec![v + 1], vec![])
    ///     })
    ///     .serve_udp(&net, 901);
    ///
    /// // Coalescing on: one-way INCs pack into MTU-sized envelopes and
    /// // ride with the next synchronous call, whose reply acknowledges
    /// // the whole pipeline in one round trip.
    /// let transport = ClntUdp::create(&net, 5002, 901, 0x2000_0779, 1)
    ///     .with_coalescing(CoalescePolicy::new(1400, SimTime::from_micros(100)));
    /// let mut client = SpecClient::builder(transport)
    ///     .proc(ProcSpec::new(IDL, 1))
    ///     .cache(cache)
    ///     .build()
    ///     .unwrap();
    ///
    /// for i in 0..8 {
    ///     client.call_oneway(&client.args(vec![i], vec![])).unwrap();
    /// }
    /// // Nothing has hit the wire yet; the sync call seals and flushes.
    /// let (out, _) = client.call(&client.args(vec![100], vec![])).unwrap();
    /// assert_eq!(*out.scalars.last().unwrap(), 101);
    /// assert_eq!(client.oneway_calls, 8);
    /// ```
    pub fn call_oneway(&mut self, args: &StubArgs) -> Result<(), RpcError> {
        let allocs_before = self.transport.wire_allocs();
        self.calls += 1;
        self.oneway_calls += 1;
        let xid = self.transport.next_xid();
        let result =
            match Self::encode_into(&self.proc_, &mut self.req, args, xid, &mut self.counts) {
                Ok(()) => self.transport.call_oneway(self.req.bytes(), xid),
                Err(e) => Err(e),
            };
        self.counts.heap_allocs += self.transport.wire_allocs() - allocs_before;
        result
    }

    /// Push queued one-way calls to the wire without waiting for a
    /// synchronous call (see [`Transport::flush_oneways`]).
    pub fn flush_oneways(&mut self) -> Result<(), RpcError> {
        self.transport.flush_oneways()
    }

    /// Whether [`SpecClient::call_oneway`] really queues (a batching
    /// transport) rather than degrading to a blocking call.
    pub fn oneway_batching(&self) -> bool {
        self.transport.oneway_batching()
    }

    /// Single-copy encode: the compiled stub emits header + arguments in
    /// one pass straight into the rewound exact-size wire buffer (xid
    /// stamped via the slot-0 override, not an args clone). An associated
    /// function so batched encoding can borrow per-slot buffers while
    /// `self`'s other fields stay accessible.
    fn encode_into(
        proc_: &CompiledProc,
        req: &mut WireBuf,
        args: &StubArgs,
        xid: u32,
        counts: &mut OpCounts,
    ) -> Result<(), RpcError> {
        let enc = &proc_.client_encode;
        req.reset(enc.wire_len);
        let encoded = run_encode_with_xid(&enc.program, req.bytes_mut(), args, xid as i32, counts);
        // Fold the wire buffer's (re)allocation accounting before any
        // early return so no growth event is lost.
        let wb_counts = *req.counts();
        req.counts_mut().reset();
        *counts += wb_counts;
        encoded
            .map(|_| ())
            .map_err(|e| RpcError::Transport(e.to_string()))
    }

    /// Specialized decode with generic fallback, into reused slots.
    fn decode_reply(&mut self, reply: &[u8], out: &mut StubArgs) -> Result<PathUsed, RpcError> {
        let dec = &self.proc_.client_decode;
        out.prepare(
            dec.layout.scalar_count as usize,
            dec.layout.array_count as usize,
        );
        match run_decode(&dec.program, reply, out, reply.len(), &mut self.counts) {
            Ok(Outcome::Done { ret: 1, .. }) => {
                self.fast_calls += 1;
                Ok(PathUsed::Fast)
            }
            Ok(Outcome::Done { .. }) | Ok(Outcome::Fallback) => {
                self.fallback_calls += 1;
                self.decode_generic(reply, out)
                    .map(|()| PathUsed::GenericFallback)
            }
            Err(e) => Err(RpcError::Transport(e.to_string())),
        }
    }

    /// Perform `batch.len()` calls as **one pipelined batch**: every
    /// request is encoded (into its own reused per-slot [`WireBuf`]) and
    /// handed to [`Transport::call_batch`], which keeps all of them in
    /// flight at once and matches replies by xid; results come back in
    /// submission order. The fixed per-call round-trip overhead — wire
    /// latency, server dispatch hand-off — is paid once per batch, the
    /// same way the compiled stubs amortize per-element marshaling
    /// overhead (see the `batched` bench scenario).
    ///
    /// Allocates fresh result slots; steady-state callers use
    /// [`SpecClient::call_batch_into`].
    pub fn call_batch(
        &mut self,
        batch: &[StubArgs],
    ) -> Result<Vec<(StubArgs, PathUsed)>, RpcError> {
        let mut outs: Vec<StubArgs> = batch.iter().map(|_| StubArgs::default()).collect();
        let paths = self.call_batch_into(batch, &mut outs)?;
        Ok(outs.into_iter().zip(paths).collect())
    }

    /// [`SpecClient::call_batch`] decoding into caller-provided result
    /// slots, reusing their capacity: with warm slots and a warm
    /// transport pool the whole batch performs zero wire-path heap
    /// allocations. Any transport or decode failure fails the batch.
    ///
    /// # Panics
    /// Panics if `batch` and `outs` have different lengths.
    pub fn call_batch_into(
        &mut self,
        batch: &[StubArgs],
        outs: &mut [StubArgs],
    ) -> Result<Vec<PathUsed>, RpcError> {
        assert_eq!(batch.len(), outs.len(), "one result slot per call");
        let allocs_before = self.transport.wire_allocs();
        self.calls += batch.len() as u64;
        let result = self.call_batch_inner(batch, outs);
        self.counts.heap_allocs += self.transport.wire_allocs() - allocs_before;
        result
    }

    fn call_batch_inner(
        &mut self,
        batch: &[StubArgs],
        outs: &mut [StubArgs],
    ) -> Result<Vec<PathUsed>, RpcError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        // One WireBuf scratch per slot, grown once and rewound per batch.
        while self.batch_req.len() < batch.len() {
            self.batch_req.push(WireBuf::new());
        }
        self.batch_xids.clear();
        for (args, req) in batch.iter().zip(self.batch_req.iter_mut()) {
            let xid = self.transport.next_xid();
            Self::encode_into(&self.proc_, req, args, xid, &mut self.counts)?;
            self.batch_xids.push(xid);
        }
        let requests: Vec<&[u8]> = self.batch_req[..batch.len()]
            .iter()
            .map(WireBuf::bytes)
            .collect();
        let replies = self.transport.call_batch(&requests, &self.batch_xids)?;
        if replies.len() != batch.len() {
            // A transport violating the one-reply-per-request contract
            // must surface as an error, not as silently truncated
            // results.
            return Err(RpcError::Transport(format!(
                "transport returned {} replies for a batch of {}",
                replies.len(),
                batch.len()
            )));
        }
        let mut paths = Vec::with_capacity(batch.len());
        let mut first_err = None;
        for (reply, out) in replies.into_iter().zip(outs.iter_mut()) {
            // Even when one call's decode fails, every reply buffer must
            // still feed the transport's pool — dropped buffers come
            // back as allocating misses on the next batch.
            if first_err.is_none() {
                match self.decode_reply(&reply, out) {
                    Ok(path) => paths.push(path),
                    Err(e) => first_err = Some(e),
                }
            }
            self.transport.recycle(reply);
        }
        match first_err {
            None => Ok(paths),
            Some(e) => Err(e),
        }
    }

    /// Whether the underlying transport supports the nonblocking
    /// (async-adapter) lane — see [`Transport::nonblocking`].
    pub fn nonblocking(&self) -> bool {
        self.transport.nonblocking()
    }

    // ------------------------------------------------------------------
    // The nonblocking call surface consumed by the `specrpc-async`
    // adapter: begin (encode + transmit), poll, resend, finish (decode +
    // recycle). The request image stays in the client's reusable wire
    // buffer between begin and finish, so retransmission re-sends the
    // same bytes — exactly like the blocking lane.
    // ------------------------------------------------------------------

    /// Begin one nonblocking call: allocate the xid, encode the request
    /// image (kept for [`SpecClient::call_resend`]), and transmit it
    /// once. At most one `call_begin` transaction may be outstanding per
    /// client; use the batch surface for overlapped calls.
    pub fn call_begin(&mut self, args: &StubArgs) -> Result<u32, RpcError> {
        self.calls += 1;
        self.async_allocs_mark = self.transport.wire_allocs();
        let xid = self.transport.next_xid();
        Self::encode_into(&self.proc_, &mut self.req, args, xid, &mut self.counts)?;
        self.transport.send_request(self.req.bytes(), xid)?;
        Ok(xid)
    }

    /// Nonblocking readiness poll for an outstanding
    /// [`SpecClient::call_begin`] transaction.
    pub fn call_poll(&mut self, xid: u32) -> Result<Option<Vec<u8>>, RpcError> {
        self.transport.poll_reply(xid)
    }

    /// Retransmit the outstanding [`SpecClient::call_begin`] request
    /// image (per-try timeout elapsed without a reply).
    pub fn call_resend(&mut self, xid: u32) -> Result<(), RpcError> {
        self.transport.send_request(self.req.bytes(), xid)
    }

    /// Begin `batch.len()` nonblocking calls: encode each into its
    /// reused per-slot wire buffer and transmit all of them, returning
    /// the xids in submission order. Collect replies with
    /// [`SpecClient::batch_poll_any`] and straggler-retransmit with
    /// [`SpecClient::batch_resend`].
    pub fn batch_begin(&mut self, batch: &[StubArgs]) -> Result<Vec<u32>, RpcError> {
        self.calls += batch.len() as u64;
        self.async_allocs_mark = self.transport.wire_allocs();
        while self.batch_req.len() < batch.len() {
            self.batch_req.push(WireBuf::new());
        }
        self.batch_xids.clear();
        for (args, req) in batch.iter().zip(self.batch_req.iter_mut()) {
            let xid = self.transport.next_xid();
            Self::encode_into(&self.proc_, req, args, xid, &mut self.counts)?;
            self.batch_xids.push(xid);
        }
        for (req, &xid) in self.batch_req.iter().zip(&self.batch_xids) {
            self.transport.send_request(req.bytes(), xid)?;
        }
        Ok(self.batch_xids.clone())
    }

    /// Nonblocking poll matching any of `xids` (the still-outstanding
    /// subset of a [`SpecClient::batch_begin`]): position + reply bytes.
    pub fn batch_poll_any(&mut self, xids: &[u32]) -> Result<Option<(usize, Vec<u8>)>, RpcError> {
        self.transport.poll_reply_any(xids)
    }

    /// Retransmit batch slot `slot` (submission index) of the current
    /// [`SpecClient::batch_begin`].
    pub fn batch_resend(&mut self, slot: usize) -> Result<(), RpcError> {
        let xid = self.batch_xids[slot];
        self.transport
            .send_request(self.batch_req[slot].bytes(), xid)
    }

    /// Finish a nonblocking call: decode `reply` into `out` (specialized
    /// fast path with generic fallback, like the blocking lane), recycle
    /// the reply buffer, and fold the wire allocations the transaction's
    /// window provoked.
    pub fn call_finish(
        &mut self,
        reply: Vec<u8>,
        out: &mut StubArgs,
    ) -> Result<PathUsed, RpcError> {
        let result = self.decode_reply(&reply, out);
        self.transport.recycle(reply);
        let now = self.transport.wire_allocs();
        self.counts.heap_allocs += now - self.async_allocs_mark;
        self.async_allocs_mark = now;
        result
    }

    /// Build the argument [`StubArgs`] with the xid slot reserved.
    pub fn args(&self, scalars: Vec<i32>, arrays: Vec<Vec<i32>>) -> StubArgs {
        let mut all = Vec::with_capacity(scalars.len() + 1);
        all.push(0); // xid slot
        all.extend(scalars);
        StubArgs::new(all, arrays)
    }

    /// The generic reply path (§6.2 `else` branch): full header
    /// validation and layered decoding.
    fn decode_generic(&mut self, reply: &[u8], out: &mut StubArgs) -> Result<(), RpcError> {
        let mut dec = XdrMem::decoder(reply);
        let hdr = ReplyHeader::decode(&mut dec)?;
        if let Some(err) = hdr.to_error() {
            return Err(err);
        }
        let decp = &self.proc_.client_decode;
        out.prepare(
            decp.layout.scalar_count as usize,
            decp.layout.array_count as usize,
        );
        decode_shape_generic(
            &mut dec,
            &self.proc_.res_shape,
            reply_fields::COUNT as u16,
            out,
        )?;
        self.counts += *dec.counts();
        Ok(())
    }
}
