//! Open-loop scale scenarios: a zipf-skewed client population driving a
//! sharded serving core, reporting virtual-time latency quantiles and
//! per-shard throughput.
//!
//! The acceptance scenario behind this module is the **million-client
//! run**: ≥10⁶ simulated client endpoints, each issuing one echo call at
//! a random instant inside an arrival window, against a service hosting
//! one procedure per array shape with a zipf-ranked shape mix (small
//! requests dominate, heavy tails exist). The server side is a
//! [`SpecService::serve_sharded`] map; the client side is raw pre-encoded
//! datagrams — one wire template per shape with only the xid patched per
//! request — so the open loop costs O(1) client state per endpoint and
//! the run scales to a million senders in one process.
//!
//! Everything is deterministic: arrivals, shapes, and target ports come
//! from one seeded [`StdRng`]; the default single-driver shard mode
//! executes all serving inline on the driving thread, so a fixed
//! [`ScaleConfig`] produces a byte-identical [`ScaleReport::render`]
//! every run.

use crate::adaptive::{
    AdaptiveClient, AdaptiveConfig, AdaptiveProc, AdaptiveRuntime, AdaptiveStats, PublishMode,
    TierUsed,
};
use crate::cache::CacheStats;
use crate::pipeline::{PipelineError, ProcPipeline};
use crate::service::SpecService;
use crate::summary::{LatencyHistogram, Summary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specrpc_netsim::net::{Addr, Endpoint, LinkStats, Network, NetworkConfig};
use specrpc_netsim::{Platform, SimTime};
use specrpc_rpc::msg::CallHeader;
use specrpc_rpc::svc_udp::serve_udp;
use specrpc_rpc::{ClntUdp, CoalescePolicy, CoalesceStats, Transport};
use specrpc_tempo::compile::StubArgs;
use specrpc_xdr::composite::xdr_array;
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::primitives::xdr_int;
use specrpc_xdr::{OpCounts, XdrStream};
use std::collections::VecDeque;
use std::sync::Arc;

/// Program number of the scale service.
pub const SCALE_PROG: u32 = 0x2000_0303;
/// Version number.
pub const SCALE_VERS: u32 = 1;
/// First server port; the shard map's sockets are sequential from here.
pub const SCALE_PORT_BASE: Addr = 40_000;
/// First client endpoint address (client `i` binds `base + i`).
pub const SCALE_CLIENT_BASE: Addr = 1_000_000;
/// Array bound in the generated IDL (matches the echo service).
const SCALE_MAX_ARR: usize = 100_000;

/// Configuration of one open-loop scale run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Simulated client endpoints; each issues exactly one call.
    pub clients: usize,
    /// Shards in the serving map.
    pub shards: usize,
    /// Server sockets per shard (the map serves
    /// `shards × ports_per_shard` sequential ports).
    pub ports_per_shard: usize,
    /// Array shapes, zipf rank order: `shapes[0]` is the most popular.
    /// One procedure (and one compiled stub set) per shape.
    pub shapes: Vec<usize>,
    /// Zipf skew exponent `s` (rank `r` weighted `1/r^s`).
    pub zipf_s: f64,
    /// Arrival window: every request's send instant is uniform in
    /// `[0, span)` virtual time.
    pub span: SimTime,
    /// Seed for arrivals, shape mix, and port targeting.
    pub seed: u64,
    /// Max in-flight requests before the oldest is reaped — bounds
    /// client-side memory without closing the loop (the window is sized
    /// far above the steady-state in-flight population).
    pub window: usize,
    /// Reactor threads per shard; `0` = deterministic single-driver
    /// mode (all serving inline on this thread).
    pub workers_per_shard: usize,
    /// Unroll bound for the per-shape compiled stubs (keeps big-shape
    /// stub programs compact).
    pub chunk: Option<usize>,
    /// Shape churn: rotate the zipf rank→shape mapping one step every
    /// this many request draws (`0` = static mix). Under churn the
    /// popular shape keeps moving, so no single stub set stays hot.
    pub churn_every: usize,
    /// Receive-queue capacity per mailbox/ready-queue
    /// ([`NetworkConfig::with_rx_queue_cap`]); deliveries beyond it are
    /// dropped tail-first and counted in [`ScaleReport::link`].
    /// `usize::MAX` = effectively unbounded (the default).
    pub rx_queue_cap: usize,
}

impl ScaleConfig {
    /// A test-sized run: hundreds of clients, seconds to execute in
    /// debug builds, same code path as the full scenario.
    pub fn smoke() -> ScaleConfig {
        ScaleConfig {
            clients: 400,
            shards: 2,
            ports_per_shard: 1,
            shapes: vec![8, 64, 256],
            zipf_s: 1.2,
            span: SimTime::from_millis(80),
            seed: 42,
            window: 128,
            workers_per_shard: 0,
            chunk: Some(32),
            churn_every: 0,
            rx_queue_cap: usize::MAX,
        }
    }

    /// The acceptance scenario: 10⁶ client endpoints, 8 shards × 2
    /// sockets, six zipf-ranked shapes. The 120s virtual arrival window
    /// keeps the (globally serialized) server demand near 50%
    /// utilization so tail latencies reflect queueing, not collapse.
    /// Run in release builds; scale `clients` down for smoke jobs.
    pub fn million() -> ScaleConfig {
        ScaleConfig {
            clients: 1_000_000,
            shards: 8,
            ports_per_shard: 2,
            shapes: vec![8, 16, 64, 256, 1024, 4096],
            zipf_s: 1.1,
            span: SimTime::from_millis(120_000),
            seed: 7,
            window: 4096,
            workers_per_shard: 0,
            chunk: Some(32),
            churn_every: 0,
            rx_queue_cap: usize::MAX,
        }
    }

    /// This config's `clients` scaled to `n`, arrival window scaled
    /// proportionally (keeps offered load identical) — how the CI smoke
    /// job shrinks the million-client scenario.
    pub fn scaled_to(mut self, n: usize) -> ScaleConfig {
        assert!(self.clients > 0);
        let ratio = n as f64 / self.clients as f64;
        self.span = SimTime::from_nanos((self.span.as_nanos() as f64 * ratio).max(1.0) as u64);
        self.clients = n;
        self
    }

    /// The server socket addresses of this config.
    pub fn ports(&self) -> Vec<Addr> {
        (0..(self.shards * self.ports_per_shard) as u32)
            .map(|i| SCALE_PORT_BASE + i)
            .collect()
    }
}

/// Outcome of one [`run_scale`] execution.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Clients that issued a request.
    pub clients: usize,
    /// Replies received (and measured) within the reap timeout.
    pub replies: u64,
    /// Requests whose reply never arrived within the reap timeout.
    pub timeouts: u64,
    /// Virtual time at the end of the run.
    pub elapsed: SimTime,
    /// Reply latency distribution (send instant → reply arrival).
    pub latency: LatencyHistogram,
    /// Events processed per shard.
    pub per_shard: Vec<u64>,
    /// Cross-shard steals observed (0 in single-driver mode).
    pub steals: u64,
    /// Link receive-queue accounting at the end of the run: drop-tail
    /// discards plus the deepest queue observed
    /// ([`Network::link_stats`]).
    pub link: LinkStats,
}

impl ScaleReport {
    /// Per-shard throughput in events per virtual second.
    pub fn per_shard_rate(&self) -> Vec<f64> {
        let secs = self.elapsed.as_nanos() as f64 / 1e9;
        self.per_shard
            .iter()
            .map(|&e| if secs > 0.0 { e as f64 / secs } else { 0.0 })
            .collect()
    }

    /// The run as a [`Summary`] (shard map + latency lines).
    pub fn summary(&self) -> Summary {
        Summary::default()
            .with_shards(self.per_shard.clone())
            .with_latency(self.latency.clone())
    }

    /// Human-readable report: the [`Summary`] lines plus the open-loop
    /// accounting. Byte-identical across runs of the same config in
    /// single-driver mode.
    pub fn render(&self) -> String {
        let mut out = self.summary().render();
        out.push_str(&format!(
            "\n\u{20} open loop:                      {} client(s), {} replie(s), {} timeout(s) over {} virtual",
            self.clients, self.replies, self.timeouts, self.elapsed
        ));
        let rates: Vec<String> = self
            .per_shard_rate()
            .iter()
            .map(|r| format!("{r:.0}/s"))
            .collect();
        out.push_str(&format!(
            "\n\u{20} shard throughput:               [{}]",
            rates.join(", ")
        ));
        out.push_str(&format!(
            "\n\u{20} link queues:                    {} drop(s), depth high-water {}",
            self.link.queue_drops, self.link.queue_depth_high_water
        ));
        out
    }
}

/// The generated interface: one `int_arr ECHO<k>(int_arr)` procedure per
/// shape, numbered `1..=shapes.len()`.
fn scale_idl(shapes: usize) -> String {
    let mut procs = String::new();
    for k in 1..=shapes {
        procs.push_str(&format!("            int_arr ECHO{k}(int_arr) = {k};\n"));
    }
    format!(
        "const MAXARR = {SCALE_MAX_ARR};\n\n\
         struct int_arr {{\n    int arr<MAXARR>;\n}};\n\n\
         program SCALEPROG {{\n    version SCALEVERS {{\n{procs}    }} = {SCALE_VERS};\n\
         }} = {SCALE_PROG};\n"
    )
}

/// One pre-encoded request image for a shape: the per-request xid is
/// patched into the first four bytes (the call header leads with it).
fn encode_template(shape: usize, proc_num: u32) -> Vec<u8> {
    let mut enc = XdrMem::encoder(64 + 4 * shape);
    let mut hdr = CallHeader::new(0, SCALE_PROG, SCALE_VERS, proc_num);
    CallHeader::xdr(&mut enc, &mut hdr).expect("header encode");
    let mut data: Vec<i32> = (0..shape as i32).collect();
    xdr_array(&mut enc, &mut data, SCALE_MAX_ARR, xdr_int).expect("array encode");
    let len = enc.getpos();
    enc.bytes()[..len].to_vec()
}

/// The zipf CDF over ranks `1..=n` with exponent `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = (1..=n)
        .map(|r| {
            acc += 1.0 / (r as f64).powf(s);
            acc
        })
        .collect();
    for c in &mut cdf {
        *c /= acc;
    }
    cdf
}

/// One queued request awaiting its reply.
struct InFlight {
    ep: Endpoint,
    xid: u32,
    sent: SimTime,
}

/// How long the reaper waits on a straggler before declaring it lost.
const REAP_TIMEOUT: SimTime = SimTime::from_millis(2_000);

/// Execute one open-loop scale run: deploy the sharded service, fire
/// every arrival at its instant, measure reply latency (send instant →
/// reply [`specrpc_netsim::net::Datagram::at`] arrival stamp), and
/// collect per-shard throughput.
pub fn run_scale(cfg: &ScaleConfig) -> Result<ScaleReport, PipelineError> {
    assert!(!cfg.shapes.is_empty(), "at least one shape");
    assert!(cfg.window > 0, "window must be positive");
    let net = Network::new(
        NetworkConfig::lan().with_rx_queue_cap(cfg.rx_queue_cap),
        cfg.seed,
    );
    let service = deploy_scale_service(cfg)?;
    let ports = cfg.ports();
    let sharded = service.serve_sharded(&net, &ports, cfg.shards, cfg.workers_per_shard);

    let templates: Vec<Vec<u8>> = cfg
        .shapes
        .iter()
        .enumerate()
        .map(|(i, &shape)| encode_template(shape, i as u32 + 1))
        .collect();

    // Arrivals: instant, shape, and target port all from one seeded
    // stream; sorted by instant (stable, so ties keep draw order).
    let cdf = zipf_cdf(cfg.shapes.len(), cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let span_ns = cfg.span.as_nanos() as f64;
    let mut arrivals: Vec<(SimTime, usize, Addr)> = (0..cfg.clients)
        .map(|i| {
            let at = SimTime::from_nanos((rng.random::<f64>() * span_ns) as u64);
            let u = rng.random::<f64>();
            let rank = cdf.partition_point(|&c| c < u).min(cfg.shapes.len() - 1);
            // Churn: the rank→shape mapping rotates one step every
            // `churn_every` draws, so popularity keeps migrating
            // (`churn_every == 0` disables the rotation).
            let offset = i.checked_div(cfg.churn_every).unwrap_or(0);
            let shape = (rank + offset) % cfg.shapes.len();
            let port = ports[rng.random_range(0..ports.len())];
            (at, shape, port)
        })
        .collect();
    arrivals.sort_by_key(|a| a.0);

    let mut inflight: VecDeque<InFlight> = VecDeque::new();
    let mut latency = LatencyHistogram::new();
    let (mut replies, mut timeouts) = (0u64, 0u64);
    let mut reap = |inflight: &mut VecDeque<InFlight>| {
        let Some(f) = inflight.pop_front() else {
            return;
        };
        loop {
            match f.ep.recv_timeout(REAP_TIMEOUT) {
                Some(dg) if dg.payload.len() >= 4 && dg.payload[0..4] == f.xid.to_be_bytes() => {
                    latency.record(dg.at.saturating_sub(f.sent));
                    replies += 1;
                    return;
                }
                // Stale or foreign datagram: keep draining this mailbox.
                Some(_) => continue,
                None => {
                    timeouts += 1;
                    return;
                }
            }
        }
    };

    for (i, &(at, shape, port)) in arrivals.iter().enumerate() {
        net.run_until(at, || false);
        let ep = net.bind_udp(SCALE_CLIENT_BASE + i as u32);
        let xid = i as u32 + 1;
        let mut req = templates[shape].clone();
        req[0..4].copy_from_slice(&xid.to_be_bytes());
        let sent = net.now();
        ep.send_to(port, req);
        inflight.push_back(InFlight { ep, xid, sent });
        if inflight.len() >= cfg.window {
            reap(&mut inflight);
        }
    }
    while !inflight.is_empty() {
        reap(&mut inflight);
    }

    Ok(ScaleReport {
        clients: cfg.clients,
        replies,
        timeouts,
        elapsed: net.now(),
        latency,
        per_shard: sharded.per_shard_events(),
        steals: sharded.cross_shard_steals(),
        link: net.link_stats(),
    })
}

/// Build the scale [`SpecService`]: one echo procedure per shape, each
/// compiled specialized to that shape.
pub fn deploy_scale_service(cfg: &ScaleConfig) -> Result<SpecService, PipelineError> {
    let idl = scale_idl(cfg.shapes.len());
    let mut service = SpecService::new();
    for (i, &shape) in cfg.shapes.iter().enumerate() {
        let mut pipeline = ProcPipeline::new(shape);
        pipeline.chunk = cfg.chunk;
        let proc_ = Arc::new(pipeline.build_from_idl(&idl, None, i as u32 + 1)?);
        service = service.proc(proc_, |args: &StubArgs| {
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        });
    }
    Ok(service)
}

/// First client port of the adaptive churn scenario.
const ADAPTIVE_CLIENT_BASE: Addr = 52_000;

/// Configuration of one shape-churn adaptive run: a sliding window of
/// live shapes drives an [`AdaptiveRuntime`]-backed deployment, so every
/// rotation introduces one cold shape (served Tier-0, promoted in the
/// background) and retires one.
#[derive(Debug, Clone)]
pub struct AdaptiveScenarioConfig {
    /// Live shapes at any instant; rotation `r` serves shapes
    /// `r .. r + window` (zipf-ranked, oldest most popular).
    pub window: usize,
    /// Window slides one shape per rotation; total distinct shapes is
    /// `window + rotations - 1`.
    pub rotations: usize,
    /// Calls issued per rotation.
    pub calls_per_rotation: usize,
    /// Zipf skew exponent over the window ranks.
    pub zipf_s: f64,
    /// Seed for the shape draws.
    pub seed: u64,
    /// Promotion threshold ([`AdaptiveConfig::promote_after`]).
    pub promote_after: u32,
    /// Compile inline on the calling path (the stall baseline).
    pub inline_compile: bool,
    /// Drain (publish) finished background compiles every this many
    /// calls — fixed hot-swap points keep the run deterministic.
    pub drain_every: usize,
    /// Stub-cache entry capacity; sized **below** the distinct shape
    /// count so the run exercises cost-aware eviction.
    pub cache_entries: usize,
}

impl AdaptiveScenarioConfig {
    /// The churn smoke run: 15 distinct shapes through a 12-entry cache,
    /// 600 calls, deterministic drains every 4 calls.
    pub fn smoke() -> AdaptiveScenarioConfig {
        AdaptiveScenarioConfig {
            window: 6,
            rotations: 10,
            calls_per_rotation: 60,
            zipf_s: 1.1,
            seed: 42,
            promote_after: 1,
            inline_compile: false,
            drain_every: 4,
            cache_entries: 12,
        }
    }

    /// This config with promotion disabled: every call serves Tier-0 —
    /// the generic round-trip baseline the cold-call bound compares
    /// against.
    pub fn generic_baseline(mut self) -> AdaptiveScenarioConfig {
        self.promote_after = u32::MAX;
        self
    }

    /// This config compiling inline on the calling path — the stall the
    /// background tiers exist to remove.
    pub fn inline_compile(mut self) -> AdaptiveScenarioConfig {
        self.inline_compile = true;
        self
    }

    /// Distinct shapes the run touches across all rotations.
    pub fn total_shapes(&self) -> usize {
        self.window + self.rotations - 1
    }
}

/// Outcome of one [`run_adaptive`] execution.
#[derive(Debug, Clone)]
pub struct AdaptiveScenarioReport {
    /// Calls performed.
    pub calls: u64,
    /// Latency of calls marshaled on Tier-0 (cold contexts).
    pub cold_latency: LatencyHistogram,
    /// Latency of calls marshaled on Tier-1 (specialized).
    pub hot_latency: LatencyHistogram,
    /// All-call latency distribution.
    pub latency: LatencyHistogram,
    /// Tier-0 calls after the first rotation (steady state).
    pub steady_tier0: u64,
    /// Tier-1 calls after the first rotation.
    pub steady_tier1: u64,
    /// Runtime counter snapshot at the end of the run.
    pub stats: AdaptiveStats,
    /// Cache counter snapshot at the end of the run.
    pub cache: CacheStats,
    /// Virtual time at the end of the run.
    pub elapsed: SimTime,
}

impl AdaptiveScenarioReport {
    /// Tier-1 fraction of the calls issued after the first rotation —
    /// the steady-state specialization hit rate (the first rotation is
    /// all-cold by construction and would dilute the measurement).
    pub fn steady_hit_rate(&self) -> f64 {
        let total = self.steady_tier0 + self.steady_tier1;
        if total == 0 {
            return 0.0;
        }
        self.steady_tier1 as f64 / total as f64
    }

    /// The run as a [`Summary`] (adaptive + cache + latency lines).
    pub fn summary(&self) -> Summary {
        Summary::default()
            .with_adaptive(self.stats)
            .with_cache(self.cache)
            .with_latency(self.latency.clone())
    }

    /// Human-readable report; byte-identical across runs of the same
    /// config (the drain points pin every hot-swap).
    pub fn render(&self) -> String {
        let mut out = self.summary().render();
        out.push_str(&format!(
            "\n\u{20} shape churn:                    {} call(s), steady-state hit rate {:.1}%",
            self.calls,
            100.0 * self.steady_hit_rate()
        ));
        out.push_str(&format!(
            "\n\u{20} cold/hot p99:                   {} / {}",
            self.cold_latency.p99(),
            self.hot_latency.p99()
        ));
        out
    }
}

/// Execute one shape-churn run: deploy an adaptive echo service (client
/// and server sharing one [`AdaptiveRuntime`]), slide the live-shape
/// window one shape per rotation, and measure per-tier virtual-time
/// latency. Client marshaling CPU is charged to the virtual clock via
/// the calibrated platform cost model, so Tier-0's interpretive overhead
/// and an inline compile's stall both show up in the quantiles.
pub fn run_adaptive(cfg: &AdaptiveScenarioConfig) -> Result<AdaptiveScenarioReport, PipelineError> {
    assert!(cfg.window > 0 && cfg.rotations > 0, "non-empty run");
    let total = cfg.total_shapes();
    let idl = scale_idl(total);
    let shapes: Vec<usize> = (0..total).map(|k| 8 * (k + 1)).collect();
    let net = Network::new(NetworkConfig::lan(), cfg.seed);
    let costs = Platform::IpxSunosAtm.costs();

    let mut acfg = AdaptiveConfig::default()
        .promote_after(cfg.promote_after)
        .publish(PublishMode::OnDrain)
        .cache_entries(cfg.cache_entries);
    if cfg.inline_compile {
        acfg = acfg.inline_compile();
    }
    let runtime = AdaptiveRuntime::new(acfg);
    {
        // An inline Tempo run stalls the caller: charge it to the clock.
        let net = net.clone();
        runtime.set_charge(move |ns| net.advance(SimTime::from_nanos(ns)));
    }

    // One adaptively specialized echo procedure per shape; client and
    // server consult the same runtime (every round trip is two lookups).
    let mut service = SpecService::new();
    let mut procs: Vec<AdaptiveProc> = Vec::with_capacity(total);
    for (i, &shape) in shapes.iter().enumerate() {
        let ap = AdaptiveProc::resolve(ProcPipeline::new(shape), &idl, None, i as u32 + 1)?;
        procs.push(ap.clone());
        service = service.proc_adaptive(runtime.clone(), ap, |args: &StubArgs| {
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        });
    }
    serve_udp(&net, SCALE_PORT_BASE, service.into_registry(), None);
    let mut clients: Vec<AdaptiveClient<ClntUdp>> = procs
        .into_iter()
        .enumerate()
        .map(|(i, ap)| {
            let clnt = ClntUdp::create(
                &net,
                ADAPTIVE_CLIENT_BASE + i as u32,
                SCALE_PORT_BASE,
                SCALE_PROG,
                SCALE_VERS,
            );
            AdaptiveClient::new(clnt, runtime.clone(), ap)
        })
        .collect();

    let cdf = zipf_cdf(cfg.window, cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cold_latency = LatencyHistogram::new();
    let mut hot_latency = LatencyHistogram::new();
    let mut latency = LatencyHistogram::new();
    let (mut steady_tier0, mut steady_tier1) = (0u64, 0u64);
    let mut calls = 0u64;
    for rot in 0..cfg.rotations {
        for _ in 0..cfg.calls_per_rotation {
            let u = rng.random::<f64>();
            let rank = cdf.partition_point(|&c| c < u).min(cfg.window - 1);
            // Rank 0 (most popular) is the oldest live shape; the new
            // shape enters at the unpopular tail and gains rank as the
            // window slides toward it.
            let idx = rot + rank;
            let client = &mut clients[idx];
            let data: Vec<i32> = (0..shapes[idx] as i32).collect();
            let args = client.args(vec![], vec![data.clone()]);
            let before = client.counts;
            let t0 = net.now();
            let (out, tier) = client
                .call(&args)
                .expect("lossless network answers every call");
            let d = client.counts.since(before);
            net.advance(SimTime::from_nanos(costs.marshal_ns(&d, 0) as u64));
            debug_assert_eq!(out.arrays[0], data, "echo integrity");
            let took = net.now().saturating_sub(t0);
            latency.record(took);
            match tier {
                TierUsed::Generic => {
                    cold_latency.record(took);
                    if rot > 0 {
                        steady_tier0 += 1;
                    }
                }
                TierUsed::Specialized => {
                    hot_latency.record(took);
                    if rot > 0 {
                        steady_tier1 += 1;
                    }
                }
            }
            calls += 1;
            if cfg.drain_every > 0 && calls.is_multiple_of(cfg.drain_every as u64) {
                runtime.drain();
            }
        }
    }
    runtime.drain();

    Ok(AdaptiveScenarioReport {
        calls,
        cold_latency,
        hot_latency,
        latency,
        steady_tier0,
        steady_tier1,
        stats: runtime.stats(),
        cache: runtime.cache().stats(),
        elapsed: net.now(),
    })
}

// ---------------------------------------------------------------------
// NFS-like mixed-procedure scenario (coalescing & one-way batching).
// ---------------------------------------------------------------------

/// Program number of the NFS-like service.
pub const NFS_PROG: u32 = 0x2000_0404;
/// Version number.
pub const NFS_VERS: u32 = 1;
/// Server socket of the NFS-like service.
pub const NFS_PORT: Addr = 46_000;
/// First client endpoint address (client `i` binds `base + i`).
pub const NFS_CLIENT_BASE: Addr = 47_000;

/// Procedure numbers of the NFS-like program.
pub const NFS_GETATTR: u32 = 1;
/// `LOOKUP(dir, name) -> fh`.
pub const NFS_LOOKUP: u32 = 2;
/// `READ(fh, offset, count) -> (len, check)`.
pub const NFS_READ: u32 = 3;
/// `WRITE(fh, offset, len) -> size` — issued **one-way** in bursts.
pub const NFS_WRITE: u32 = 4;
/// `COMMIT(fh) -> committed` — the synchronous call that flushes and
/// acknowledges a preceding one-way WRITE burst.
pub const NFS_COMMIT: u32 = 5;

/// The NFS-like interface: five fixed-shape (scalar-only) procedures, so
/// every call message stays small — the regime where per-datagram cost
/// dominates and coalescing pays.
const NFS_IDL: &str = r#"
    struct getattr_arg { int fh; };
    struct getattr_res { int size; int mtime; int mode; };
    struct lookup_arg { int dir; int name; };
    struct lookup_res { int fh; };
    struct read_arg { int fh; int offset; int count; };
    struct read_res { int len; int check; };
    struct write_arg { int fh; int offset; int len; };
    struct write_res { int size; };
    struct commit_arg { int fh; };
    struct commit_res { int committed; };
    program NFSPROG {
        version NFSVERS {
            getattr_res GETATTR(getattr_arg) = 1;
            lookup_res LOOKUP(lookup_arg) = 2;
            read_res READ(read_arg) = 3;
            write_res WRITE(write_arg) = 4;
            commit_res COMMIT(commit_arg) = 5;
        } = 1;
    } = 0x20000404;
"#;

/// Configuration of one NFS-like run: a zipf-popular file-handle
/// population under a mixed GETATTR/LOOKUP/READ workload, with WRITE
/// issued as **one-way bursts** each closed by a synchronous COMMIT
/// (Sun batch mode: the COMMIT reply acknowledges the burst). The
/// network charges an honest per-packet cost, so the report's datagram
/// counts and amortized latency expose what coalescing saves.
#[derive(Debug, Clone)]
pub struct NfsConfig {
    /// Client endpoints; each runs `ops_per_client` op draws in turn.
    pub clients: usize,
    /// File handles (`1..=files`), zipf-ranked: handle 1 most popular.
    pub files: usize,
    /// Op draws per client (a WRITE-burst draw issues
    /// `write_burst + 1` calls).
    pub ops_per_client: usize,
    /// One-way WRITEs per burst, before the sync COMMIT that seals,
    /// flushes, and acknowledges them.
    pub write_burst: usize,
    /// Zipf skew exponent over file-handle ranks.
    pub zipf_s: f64,
    /// Seed for handle draws and the op mix.
    pub seed: u64,
    /// Client coalescing policy ([`CoalescePolicy::per_call`] is the
    /// honest one-datagram-per-call A/B baseline).
    pub policy: CoalescePolicy,
    /// Per-fragment header bytes charged by the link
    /// ([`NetworkConfig::with_datagram_cost`]).
    pub header_bytes: usize,
    /// Fixed per-fragment cost in virtual ns.
    pub per_datagram_ns: u64,
    /// Link MTU: payloads fragment at this size
    /// ([`NetworkConfig::with_mtu`]).
    pub wire_mtu: usize,
}

impl NfsConfig {
    /// A test-sized run: seconds in debug builds, same code path as any
    /// larger configuration. Ethernet-flavored coalescing over a link
    /// that charges 28 header bytes + 100 µs per wire fragment (the
    /// per-packet protocol-stack traversal the paper's era paid on
    /// every UDP send — the fixed cost batching amortizes).
    pub fn smoke() -> NfsConfig {
        NfsConfig {
            clients: 8,
            files: 32,
            ops_per_client: 40,
            write_burst: 8,
            zipf_s: 1.1,
            seed: 42,
            policy: CoalescePolicy::ethernet(),
            header_bytes: specrpc_netsim::UDP_IP_HEADER_BYTES,
            per_datagram_ns: 100_000,
            wire_mtu: 1500,
        }
    }

    /// This config with coalescing degraded to one datagram per call —
    /// identical framing and one-way semantics, no amortization. The
    /// baseline every coalescing win is measured against.
    pub fn per_call(mut self) -> NfsConfig {
        self.policy = CoalescePolicy::per_call();
        self
    }
}

/// Outcome of one [`run_nfs`] execution.
#[derive(Debug, Clone)]
pub struct NfsReport {
    /// Client endpoints that ran.
    pub clients: usize,
    /// Calls issued (sync + one-way).
    pub ops: u64,
    /// Synchronous calls (GETATTR/LOOKUP/READ/COMMIT).
    pub sync_calls: u64,
    /// One-way WRITE calls.
    pub oneway_writes: u64,
    /// COMMIT calls (one per WRITE burst).
    pub commits: u64,
    /// Latency distribution of the synchronous calls.
    pub latency: LatencyHistogram,
    /// Virtual time at the end of the run.
    pub elapsed: SimTime,
    /// Link accounting at the end of the run, including datagram and
    /// wire-fragment counts under the per-packet cost model.
    pub link: LinkStats,
    /// Client coalescer counters, summed across all clients.
    pub coalesce: CoalesceStats,
}

impl NfsReport {
    /// Datagrams the whole run put on the wire, per issued call — the
    /// number coalescing drives below 2.0 (request + reply) and one-way
    /// batching drives toward `1/burst`.
    pub fn datagrams_per_op(&self) -> f64 {
        self.link.datagrams as f64 / self.ops.max(1) as f64
    }

    /// Amortized virtual time per issued call over the full run.
    pub fn amortized_per_op(&self) -> SimTime {
        SimTime::from_nanos(self.elapsed.as_nanos() / self.ops.max(1))
    }

    /// The run as a [`Summary`] (latency + link lines).
    pub fn summary(&self) -> Summary {
        Summary::default()
            .with_latency(self.latency.clone())
            .with_wire(OpCounts::default(), self.sync_calls, None, Some(self.link))
    }

    /// Human-readable report; byte-identical across runs of the same
    /// config (sequential clients, one seeded stream, virtual clock).
    pub fn render(&self) -> String {
        let mut out = self.summary().render();
        out.push_str(&format!(
            "\n\u{20} nfs mix:                        {} op(s) from {} client(s): {} sync, {} one-way write(s), {} commit(s)",
            self.ops, self.clients, self.sync_calls, self.oneway_writes, self.commits
        ));
        out.push_str(&format!(
            "\n\u{20} coalescing:                     {} queued, flushes mtu {} / linger {} / sync {} / explicit {}",
            self.coalesce.oneways_queued,
            self.coalesce.flushes_mtu,
            self.coalesce.flushes_linger,
            self.coalesce.flushes_sync,
            self.coalesce.flushes_explicit,
        ));
        out.push_str(&format!(
            "\n\u{20} wire economy:                   {:.2} datagram(s)/op, {} amortized/op",
            self.datagrams_per_op(),
            self.amortized_per_op(),
        ));
        out
    }
}

/// Encode one NFS-like call message: header for `proc_num` under `xid`,
/// then the argument scalars in field order.
fn encode_nfs_call(xid: u32, proc_num: u32, scalars: &[i32]) -> Vec<u8> {
    let mut enc = XdrMem::encoder(64 + 4 * scalars.len());
    let mut hdr = CallHeader::new(xid, NFS_PROG, NFS_VERS, proc_num);
    CallHeader::xdr(&mut enc, &mut hdr).expect("header encode");
    for &v in scalars {
        let mut v = v;
        xdr_int(&mut enc, &mut v).expect("arg encode");
    }
    let len = enc.getpos();
    enc.bytes()[..len].to_vec()
}

/// Build the NFS-like [`SpecService`]: five compiled fixed-shape
/// procedures over one shared in-memory file table. WRITE sizes and
/// COMMIT counters are real state, so replies (and the equivalence
/// tests over them) observe every handler execution.
pub fn deploy_nfs_service(files: usize) -> Result<SpecService, PipelineError> {
    #[derive(Default)]
    struct NfsState {
        sizes: Vec<i32>,
        uncommitted: Vec<i32>,
    }
    let state = Arc::new(std::sync::Mutex::new(NfsState {
        sizes: (0..files).map(|i| 512 * (i as i32 % 7 + 1)).collect(),
        uncommitted: vec![0; files],
    }));
    let fh_index = move |fh: i32| (fh - 1).rem_euclid(files as i32) as usize;

    let mut service = SpecService::new();
    let compiled: Vec<Arc<crate::pipeline::CompiledProc>> = (NFS_GETATTR..=NFS_COMMIT)
        .map(|p| {
            ProcPipeline::new(0)
                .build_from_idl(NFS_IDL, None, p)
                .map(Arc::new)
        })
        .collect::<Result<_, _>>()?;

    let s = state.clone();
    service = service.proc(compiled[0].clone(), move |args: &StubArgs| {
        let fh = *args.scalars.last().expect("getattr arg");
        let size = s.lock().unwrap().sizes[fh_index(fh)];
        StubArgs::new(vec![size, fh * 31 + size, 420], vec![])
    });
    service = service.proc(compiled[1].clone(), move |args: &StubArgs| {
        let n = args.scalars.len();
        let (dir, name) = (args.scalars[n - 2], args.scalars[n - 1]);
        StubArgs::new(vec![(dir + name).rem_euclid(files as i32) + 1], vec![])
    });
    let s = state.clone();
    service = service.proc(compiled[2].clone(), move |args: &StubArgs| {
        let n = args.scalars.len();
        let (fh, offset, count) = (
            args.scalars[n - 3],
            args.scalars[n - 2],
            args.scalars[n - 1],
        );
        let size = s.lock().unwrap().sizes[fh_index(fh)];
        let len = count.min((size - offset).max(0));
        StubArgs::new(vec![len, fh ^ offset], vec![])
    });
    let s = state.clone();
    service = service.proc(compiled[3].clone(), move |args: &StubArgs| {
        let n = args.scalars.len();
        let (fh, offset, len) = (
            args.scalars[n - 3],
            args.scalars[n - 2],
            args.scalars[n - 1],
        );
        let mut st = s.lock().unwrap();
        let i = fh_index(fh);
        st.sizes[i] = st.sizes[i].max(offset + len);
        st.uncommitted[i] += 1;
        let size = st.sizes[i];
        StubArgs::new(vec![size], vec![])
    });
    let s = state.clone();
    service = service.proc(compiled[4].clone(), move |args: &StubArgs| {
        let fh = *args.scalars.last().expect("commit arg");
        let mut st = s.lock().unwrap();
        let i = fh_index(fh);
        let committed = st.uncommitted[i];
        st.uncommitted[i] = 0;
        StubArgs::new(vec![committed], vec![])
    });
    Ok(service)
}

/// Execute one NFS-like run: deploy the five-procedure service behind
/// the shared cache-fronted dispatch, then drive each client through a
/// zipf-skewed mix of synchronous GETATTR/LOOKUP/READ calls and one-way
/// WRITE bursts sealed by sync COMMITs, over a link that charges every
/// wire fragment its header bytes plus a fixed per-packet cost.
///
/// Clients run sequentially on the virtual clock, so a fixed config
/// produces a byte-identical [`NfsReport::render`] every run.
pub fn run_nfs(cfg: &NfsConfig) -> Result<NfsReport, PipelineError> {
    assert!(cfg.clients > 0 && cfg.files > 0, "non-empty run");
    let net = Network::new(
        NetworkConfig::lan()
            .with_datagram_cost(cfg.header_bytes, cfg.per_datagram_ns)
            .with_mtu(cfg.wire_mtu),
        cfg.seed,
    );
    let service = deploy_nfs_service(cfg.files)?;
    serve_udp(&net, NFS_PORT, service.into_registry(), None);

    let cdf = zipf_cdf(cfg.files, cfg.zipf_s);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut latency = LatencyHistogram::new();
    let (mut ops, mut sync_calls, mut oneway_writes, mut commits) = (0u64, 0u64, 0u64, 0u64);
    let mut coalesce = CoalesceStats::default();

    for c in 0..cfg.clients {
        let mut clnt = ClntUdp::create(
            &net,
            NFS_CLIENT_BASE + c as Addr,
            NFS_PORT,
            NFS_PROG,
            NFS_VERS,
        )
        .with_coalescing(cfg.policy);
        fn sync_call(
            net: &Network,
            clnt: &mut ClntUdp,
            latency: &mut LatencyHistogram,
            proc_num: u32,
            scalars: &[i32],
        ) {
            let xid = clnt.next_xid();
            let req = encode_nfs_call(xid, proc_num, scalars);
            let t0 = net.now();
            let reply = Transport::call(clnt, &req, xid).expect("lossless link answers");
            latency.record(net.now().saturating_sub(t0));
            clnt.recycle(reply);
        }
        for _ in 0..cfg.ops_per_client {
            let u = rng.random::<f64>();
            let rank = cdf.partition_point(|&c| c < u).min(cfg.files - 1);
            let fh = rank as i32 + 1;
            let (proc_num, args) = match rng.random_range(0..4u32) {
                0 => {
                    // One-way WRITE burst, sealed by a sync COMMIT whose
                    // reply acknowledges the whole pipeline.
                    for b in 0..cfg.write_burst {
                        let xid = clnt.next_xid();
                        let req = encode_nfs_call(xid, NFS_WRITE, &[fh, 64 * b as i32, 64]);
                        clnt.call_oneway(&req, xid).expect("one-way queue");
                        oneway_writes += 1;
                        ops += 1;
                    }
                    commits += 1;
                    (NFS_COMMIT, vec![fh])
                }
                1 => (NFS_GETATTR, vec![fh]),
                2 => (NFS_LOOKUP, vec![fh, rng.random_range(0..64)]),
                _ => (NFS_READ, vec![fh, rng.random_range(0..4) * 64, 64]),
            };
            sync_call(&net, &mut clnt, &mut latency, proc_num, &args);
            sync_calls += 1;
            ops += 1;
        }
        if let Some(s) = clnt.coalesce_stats() {
            coalesce.oneways_queued += s.oneways_queued;
            coalesce.flushes_mtu += s.flushes_mtu;
            coalesce.flushes_linger += s.flushes_linger;
            coalesce.flushes_sync += s.flushes_sync;
            coalesce.flushes_explicit += s.flushes_explicit;
            coalesce.pending_submessages += s.pending_submessages;
            coalesce.unacked_envelopes += s.unacked_envelopes;
        }
    }

    Ok(NfsReport {
        clients: cfg.clients,
        ops,
        sync_calls,
        oneway_writes,
        commits,
        latency,
        elapsed: net.now(),
        link: net.link_stats(),
        coalesce,
    })
}

/// [`run_scale`] with the full sharded map replaced by a single shard —
/// the determinism baseline the sharding tests compare against.
pub fn run_scale_single_shard(cfg: &ScaleConfig) -> Result<ScaleReport, PipelineError> {
    let mut one = cfg.clone();
    // Same socket count, one shard: shard assignment is the only change.
    one.ports_per_shard = cfg.shards * cfg.ports_per_shard;
    one.shards = 1;
    run_scale(&one)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_answers_every_client() {
        let cfg = ScaleConfig::smoke();
        let report = run_scale(&cfg).unwrap();
        assert_eq!(report.replies, cfg.clients as u64);
        assert_eq!(report.timeouts, 0);
        assert_eq!(report.latency.count(), cfg.clients as u64);
        assert_eq!(
            report.per_shard.iter().sum::<u64>(),
            cfg.clients as u64,
            "every request processed exactly once"
        );
        assert_eq!(report.per_shard.len(), cfg.shards);
        assert!(report.elapsed >= cfg.span.saturating_sub(SimTime::from_millis(1)));
    }

    #[test]
    fn report_surfaces_link_queue_counters() {
        // The smoke run is single-driver (queue depth never exceeds 1),
        // so the bounded-queue counters must read clean — and render.
        let report = run_scale(&ScaleConfig::smoke()).unwrap();
        assert_eq!(report.link.queue_drops, 0);
        let text = report.render();
        assert!(text.contains("link queues:"), "{text}");
        assert!(text.contains("0 drop(s)"), "{text}");
    }

    #[test]
    fn fixed_seed_renders_byte_identical_reports() {
        let cfg = ScaleConfig::smoke();
        let a = run_scale(&cfg).unwrap();
        let b = run_scale(&cfg).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.per_shard, b.per_shard);
    }

    #[test]
    fn zipf_mix_skews_toward_the_first_shape() {
        let cdf = zipf_cdf(4, 1.2);
        assert!(cdf[0] > 0.4, "rank 1 dominates: {cdf:?}");
        assert!((cdf[3] - 1.0).abs() < 1e-12, "cdf normalized");
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let u = rng.random::<f64>();
            counts[cdf.partition_point(|&c| c < u).min(3)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[3]);
    }

    #[test]
    fn report_renders_quantiles_and_throughput() {
        let mut cfg = ScaleConfig::smoke();
        cfg.clients = 150;
        let report = run_scale(&cfg).unwrap();
        let text = report.render();
        assert!(text.contains("shard map:"), "{text}");
        assert!(text.contains("latency (virtual time):"), "{text}");
        assert!(text.contains("p999"), "{text}");
        assert!(
            text.contains("150 client(s), 150 replie(s), 0 timeout(s)"),
            "{text}"
        );
        assert!(text.contains("shard throughput:"), "{text}");
    }

    #[test]
    fn scaled_to_preserves_offered_load() {
        let cfg = ScaleConfig::million().scaled_to(1_000);
        assert_eq!(cfg.clients, 1_000);
        assert_eq!(cfg.span, SimTime::from_millis(120));
    }

    #[test]
    fn churned_mix_still_answers_every_client() {
        let mut cfg = ScaleConfig::smoke();
        cfg.clients = 300;
        cfg.churn_every = 50;
        let a = run_scale(&cfg).unwrap();
        assert_eq!(a.replies, 300);
        assert_eq!(a.timeouts, 0);
        let b = run_scale(&cfg).unwrap();
        assert_eq!(a.render(), b.render(), "churn stays deterministic");
        // The rotation really changes the mix: the same seed without
        // churn produces a different (skew-stable) report.
        cfg.churn_every = 0;
        let static_mix = run_scale(&cfg).unwrap();
        assert_ne!(a.latency, static_mix.latency);
    }

    #[test]
    fn adaptive_smoke_is_deterministic_and_promotes() {
        let mut cfg = AdaptiveScenarioConfig::smoke();
        cfg.rotations = 4;
        cfg.calls_per_rotation = 24;
        let a = run_adaptive(&cfg).unwrap();
        let b = run_adaptive(&cfg).unwrap();
        assert_eq!(a.render(), b.render(), "drain points pin the swaps");
        assert!(a.stats.hot_swaps > 0, "{:?}", a.stats);
        assert!(a.stats.tier1_calls > a.stats.tier0_calls, "{:?}", a.stats);
        let text = a.render();
        assert!(text.contains("adaptive tiers"), "{text}");
        assert!(text.contains("steady-state hit rate"), "{text}");
    }

    #[test]
    fn nfs_smoke_runs_the_full_mix() {
        let report = run_nfs(&NfsConfig::smoke()).unwrap();
        assert!(report.oneway_writes > 0, "bursts drawn: {report:?}");
        assert!(report.commits > 0);
        assert_eq!(
            report.ops,
            report.sync_calls + report.oneway_writes,
            "every op is sync or one-way"
        );
        assert_eq!(report.latency.count(), report.sync_calls);
        assert_eq!(report.coalesce.oneways_queued, report.oneway_writes);
        assert_eq!(report.coalesce.pending_submessages, 0, "all bursts sealed");
        assert_eq!(report.coalesce.unacked_envelopes, 0, "all bursts acked");
        assert_eq!(report.link.queue_drops, 0);
    }

    #[test]
    fn nfs_fixed_seed_renders_byte_identical_reports() {
        let cfg = NfsConfig::smoke();
        let a = run_nfs(&cfg).unwrap();
        let b = run_nfs(&cfg).unwrap();
        assert_eq!(a.render(), b.render());
        let text = a.render();
        assert!(text.contains("nfs mix:"), "{text}");
        assert!(text.contains("coalescing:"), "{text}");
        assert!(text.contains("datagram(s)/op"), "{text}");
        assert!(text.contains("link packets:"), "{text}");
    }

    #[test]
    fn nfs_coalescing_beats_the_per_call_baseline() {
        let coalesced = run_nfs(&NfsConfig::smoke()).unwrap();
        let plain = run_nfs(&NfsConfig::smoke().per_call()).unwrap();
        // Same seed, same op sequence, same handler state transitions.
        assert_eq!(plain.ops, coalesced.ops);
        assert_eq!(plain.oneway_writes, coalesced.oneway_writes);
        // Coalescing packs each WRITE burst + COMMIT into one envelope,
        // so nearly every one-way write rides free; the baseline pays
        // one datagram per call.
        let saved = plain.link.datagrams - coalesced.link.datagrams;
        assert!(
            saved * 10 >= coalesced.oneway_writes * 9,
            "saved {} datagrams over {} one-way writes (coalesced {} vs per-call {})",
            saved,
            coalesced.oneway_writes,
            coalesced.link.datagrams,
            plain.link.datagrams
        );
        // Fewer packet taxes: less virtual time for the same work.
        assert!(
            coalesced.elapsed < plain.elapsed,
            "coalesced {} vs per-call {}",
            coalesced.elapsed,
            plain.elapsed
        );
        assert!(coalesced.coalesce.flushes_sync > 0);
        assert_eq!(plain.coalesce.flushes_mtu, plain.oneway_writes);
    }

    #[test]
    fn single_shard_baseline_matches_reply_counts() {
        let mut cfg = ScaleConfig::smoke();
        cfg.clients = 200;
        let many = run_scale(&cfg).unwrap();
        let one = run_scale_single_shard(&cfg).unwrap();
        assert_eq!(one.per_shard.len(), 1);
        assert_eq!(one.replies, many.replies);
        // Shard assignment never changes delivery order in single-driver
        // mode: the measured latencies are identical, not just similar.
        assert_eq!(one.latency, many.latency);
        assert_eq!(one.elapsed, many.elapsed);
    }
}
