//! Retransmission-strategy study over the honest link: a burst of echo
//! calls against a server with a **bounded service rate** and a
//! **bounded drop-tail receive queue**, comparing what the client's
//! retry policy does to completion time, retransmission load, and
//! queue drops.
//!
//! The congested resources are all modeled honestly by `specrpc-netsim`
//! after the occupancy fix:
//!
//! - the server's **receive queue** is a bounded mailbox
//!   ([`NetworkConfig::with_rx_queue_cap`]): a burst larger than the cap
//!   drop-tails, and every drop must be recovered by a client
//!   retransmission;
//! - the server's **CPU** serves one request per
//!   [`CongestionConfig::service_time`], so demand above `1/service_time`
//!   builds a standing queue;
//! - the server's **uplink** carries every reply through the shared
//!   per-endpoint wire occupancy, so replies to a burst serialize
//!   cumulatively instead of departing in parallel;
//! - the seeded **fault model** (loss / duplication / reordering)
//!   composes on top.
//!
//! Three strategies from [`RetryPolicy`] are compared:
//!
//! - **Fixed** — classic `clntudp_call`: retransmit every
//!   `retry_timeout`. Under queueing delay above the timeout it
//!   retransmits *spuriously*, feeding the very queue it is waiting on.
//! - **ExpBackoff** — the per-try timeout doubles, so pressure on a
//!   congested queue decays instead of compounding, at the price of slow
//!   recovery for genuinely lost datagrams.
//! - **Paced** — per-try timeout stays at the base, but resends are
//!   released at most one per `gap` of virtual time across the whole
//!   client population (one pacer, as if the calls share a host): the
//!   retransmit *storm* is spread out so a bounded queue can absorb it.
//!
//! Everything is seeded and single-driver: a fixed [`CongestionConfig`]
//! produces a byte-identical [`CongestionReport::render`] every run.

use crate::echo::{build_echo_proc, ECHO_PROG, ECHO_VERS, MAX_ARR};
use crate::pipeline::PipelineError;
use crate::service::SpecService;
use crate::summary::{LatencyHistogram, Summary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specrpc_netsim::net::{Addr, Endpoint, LinkStats, Network, NetworkConfig};
use specrpc_netsim::{FaultConfig, SimTime};
use specrpc_rpc::msg::CallHeader;
use specrpc_rpc::{RetryPolicy, SvcRegistry};
use specrpc_tempo::compile::StubArgs;
use specrpc_xdr::composite::xdr_array;
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::primitives::xdr_int;
use specrpc_xdr::{OpCounts, XdrStream};

/// Server port of the congestion scenario.
pub const CONGESTION_PORT: Addr = 48_000;
/// First client endpoint address.
pub const CONGESTION_CLIENT_BASE: Addr = 70_000;

/// Configuration of one congestion run.
#[derive(Debug, Clone)]
pub struct CongestionConfig {
    /// Client endpoints; each issues exactly one echo call.
    pub clients: usize,
    /// Echo array size (ints) — the datagram payload knob.
    pub payload: usize,
    /// Arrival window: send instants are uniform in `[0, span)`.
    pub span: SimTime,
    /// Seed for arrivals and the fault stream.
    pub seed: u64,
    /// Fault model applied to every datagram (requests and replies).
    pub faults: FaultConfig,
    /// Server receive-queue capacity (drop-tail beyond it).
    pub rx_queue_cap: usize,
    /// Server CPU time per served request — the service-rate bound.
    pub service_time: SimTime,
    /// Base per-try timeout (the policies derive their schedules from
    /// it via [`RetryPolicy::try_timeout`]).
    pub retry_timeout: SimTime,
    /// Pacing gap of the [`RetryPolicy::Paced`] strategy.
    pub pace_gap: SimTime,
    /// Transmissions allowed per call (first try included) before the
    /// call is declared failed.
    pub max_tries: u32,
    /// The retransmission strategy under study.
    pub policy: RetryPolicy,
}

impl CongestionConfig {
    /// A deliberately overloaded burst: offered demand
    /// (`clients × service_time`) is ~3× the arrival window, and the
    /// receive queue holds only a quarter of the burst, so drops and
    /// queueing delay above `retry_timeout` are guaranteed — the regime
    /// where the strategies actually differ.
    pub fn smoke() -> CongestionConfig {
        CongestionConfig {
            clients: 48,
            payload: 32,
            span: SimTime::from_millis(1),
            seed: 11,
            faults: FaultConfig::NONE,
            rx_queue_cap: 12,
            service_time: SimTime::from_micros(60),
            retry_timeout: SimTime::from_micros(800),
            pace_gap: SimTime::from_micros(120),
            max_tries: 10,
            policy: RetryPolicy::Fixed,
        }
    }

    /// This config under the given fault model.
    pub fn with_faults(mut self, faults: FaultConfig) -> CongestionConfig {
        self.faults = faults;
        self
    }

    /// This config under the given retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> CongestionConfig {
        self.policy = policy;
        self
    }

    /// The three strategies this config compares, parameterized from
    /// its own timing knobs.
    pub fn strategies(&self) -> [RetryPolicy; 3] {
        [
            RetryPolicy::Fixed,
            RetryPolicy::ExpBackoff {
                cap: SimTime::from_nanos(self.retry_timeout.as_nanos().saturating_mul(16)),
            },
            RetryPolicy::Paced { gap: self.pace_gap },
        ]
    }
}

/// Outcome of one [`run_congestion`] execution.
#[derive(Debug, Clone)]
pub struct CongestionReport {
    /// The strategy that produced this report.
    pub policy: RetryPolicy,
    /// Calls issued.
    pub calls: usize,
    /// Calls answered within `max_tries`.
    pub completed: u64,
    /// Calls that exhausted `max_tries` without a reply.
    pub failed: u64,
    /// Datagrams transmitted (first tries included).
    pub transmissions: u64,
    /// Retransmissions (`transmissions − calls` minus abandoned tries).
    pub retransmits: u64,
    /// Link queue accounting: drop-tail discards and depth high-water.
    pub link: LinkStats,
    /// Virtual time when the last call completed or failed.
    pub elapsed: SimTime,
    /// Completion latency distribution (first send → reply arrival).
    pub latency: LatencyHistogram,
}

impl CongestionReport {
    /// Completed calls per virtual second.
    pub fn goodput(&self) -> f64 {
        let secs = self.elapsed.as_nanos() as f64 / 1e9;
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Retransmissions per issued call.
    pub fn retransmits_per_call(&self) -> f64 {
        self.retransmits as f64 / self.calls.max(1) as f64
    }

    /// Short label of the strategy (table/bench row key).
    pub fn policy_label(&self) -> &'static str {
        policy_label(self.policy)
    }

    /// The run as a [`Summary`] (latency + link-queue lines).
    pub fn summary(&self) -> Summary {
        Summary::default()
            .with_latency(self.latency.clone())
            .with_wire(OpCounts::new(), self.calls as u64, None, Some(self.link))
    }

    /// Human-readable report; byte-identical across runs of one config.
    pub fn render(&self) -> String {
        let mut out = self.summary().render();
        out.push_str(&format!(
            "\n\u{20} retransmission strategy:        {}",
            self.policy_label()
        ));
        out.push_str(&format!(
            "\n\u{20} congestion outcome:             {}/{} completed, {} failed, {} retransmit(s) ({:.2}/call) over {} virtual",
            self.completed,
            self.calls,
            self.failed,
            self.retransmits,
            self.retransmits_per_call(),
            self.elapsed,
        ));
        out
    }
}

/// Short label of a strategy (table/bench row key).
pub fn policy_label(policy: RetryPolicy) -> &'static str {
    match policy {
        RetryPolicy::Fixed => "fixed",
        RetryPolicy::ExpBackoff { .. } => "expbackoff",
        RetryPolicy::Paced { .. } => "paced",
    }
}

/// Per-call client state in the open-loop driver.
enum CallState {
    /// Next transmission scheduled at this instant.
    Send(SimTime),
    /// Waiting for a reply; retransmit (or fail) at this deadline.
    Wait(SimTime),
    Done,
    Failed,
}

struct Caller {
    ep: Endpoint,
    xid: u32,
    req: Vec<u8>,
    tries: u32,
    first_sent: SimTime,
    state: CallState,
}

/// Execute one congestion run: deploy the echo service behind a bounded
/// mailbox, fire the burst, drive every call through the configured
/// retry policy, and account for the casualties.
pub fn run_congestion(cfg: &CongestionConfig) -> Result<CongestionReport, PipelineError> {
    assert!(cfg.clients > 0 && cfg.max_tries > 0, "non-empty run");
    assert!(cfg.payload <= MAX_ARR, "payload within IDL bound");
    let net = Network::new(
        NetworkConfig::lan()
            .with_faults(cfg.faults)
            .with_rx_queue_cap(cfg.rx_queue_cap),
        cfg.seed,
    );
    let registry = deploy_congestion_service(cfg)?;
    // The server is a plain bounded mailbox — not a handler slot — so
    // deliveries queue (and drop-tail) while its CPU is busy.
    let server = net.bind_udp(CONGESTION_PORT);

    let template = encode_echo_template(cfg.payload);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let span_ns = cfg.span.as_nanos() as f64;
    let mut callers: Vec<Caller> = (0..cfg.clients)
        .map(|i| {
            let at = SimTime::from_nanos((rng.random::<f64>() * span_ns) as u64);
            let xid = i as u32 + 1;
            let mut req = template.clone();
            req[0..4].copy_from_slice(&xid.to_be_bytes());
            Caller {
                ep: net.bind_udp(CONGESTION_CLIENT_BASE + i as u32),
                xid,
                req,
                tries: 0,
                first_sent: SimTime::ZERO,
                state: CallState::Send(at),
            }
        })
        .collect();

    /// Drain every live caller's mailbox (first xid match wins; stale
    /// duplicates are discarded); returns whether any call completed.
    fn collect(
        callers: &mut [Caller],
        latency: &mut LatencyHistogram,
        completed: &mut u64,
        last_settled: &mut SimTime,
    ) -> bool {
        let mut any = false;
        for c in callers {
            if matches!(c.state, CallState::Done | CallState::Failed) {
                continue;
            }
            while let Some(dg) = c.ep.try_recv() {
                if dg.payload.len() >= 4 && dg.payload[0..4] == c.xid.to_be_bytes() {
                    latency.record(dg.at.saturating_sub(c.first_sent));
                    *completed += 1;
                    *last_settled = (*last_settled).max(dg.at);
                    c.state = CallState::Done;
                    any = true;
                    break;
                }
            }
        }
        any
    }

    let mut latency = LatencyHistogram::new();
    let (mut completed, mut failed) = (0u64, 0u64);
    let (mut transmissions, mut retransmits) = (0u64, 0u64);
    let mut last_settled = SimTime::ZERO;
    // The shared pacer of `RetryPolicy::Paced`: at most one resend per
    // `gap`, population-wide.
    let mut pacer_free = SimTime::ZERO;
    // Hard backstop: the per-call schedules bound every run, but a
    // modeling mistake must surface as `failed`, not as a spin.
    let horizon = cfg.span
        + SimTime::from_nanos(
            cfg.retry_timeout
                .as_nanos()
                .saturating_mul(u64::from(cfg.max_tries) * 32),
        );

    loop {
        collect(
            &mut callers,
            &mut latency,
            &mut completed,
            &mut last_settled,
        );

        // Fire everything due: transmissions and expiries.
        let now = net.now();
        let past_horizon = now >= horizon;
        for c in &mut callers {
            match c.state {
                CallState::Send(at) if at <= now => {
                    if c.tries == 0 {
                        c.first_sent = now;
                    } else {
                        retransmits += 1;
                    }
                    c.ep.send_to(CONGESTION_PORT, c.req.clone());
                    transmissions += 1;
                    c.tries += 1;
                    let wait = cfg.policy.try_timeout(cfg.retry_timeout, c.tries - 1);
                    c.state = CallState::Wait(now + wait);
                }
                CallState::Wait(deadline) if deadline <= now || past_horizon => {
                    if c.tries >= cfg.max_tries || past_horizon {
                        failed += 1;
                        last_settled = last_settled.max(now);
                        c.state = CallState::Failed;
                    } else {
                        // A paced resend queues behind the shared pacer;
                        // the others go out immediately.
                        let at = match cfg.policy {
                            RetryPolicy::Paced { gap } => {
                                let at = now.max(pacer_free);
                                pacer_free = at + gap;
                                at
                            }
                            _ => now,
                        };
                        c.state = CallState::Send(at);
                    }
                }
                _ => {}
            }
        }

        // Next client instant; none left = run over.
        let next = callers
            .iter()
            .filter_map(|c| match c.state {
                CallState::Send(at) => Some(at),
                CallState::Wait(deadline) => Some(deadline),
                _ => None,
            })
            .min();
        let Some(next) = next else { break };
        if next <= net.now() {
            // Due work was produced by this pass (a resend released at
            // `now`); loop again without advancing the clock.
            continue;
        }

        // Advance toward it one service quantum at a time, letting the
        // server drain its queue at its bounded rate along the way.
        while net.now() < next {
            let slice = (net.now() + cfg.service_time).min(next);
            net.run_until(slice, || false);
            if let Some(dg) = server.try_recv() {
                // Serve one request: CPU charge first (arrivals keep
                // flooding the bounded mailbox meanwhile), then the
                // reply joins the server's uplink occupancy queue.
                net.advance(cfg.service_time);
                let reply = registry.dispatch(&dg.payload);
                server.send_to(dg.from, reply);
            }
            // A reply may have landed mid-advance; completing it now
            // cancels retransmits that would otherwise fire on schedule.
            if collect(
                &mut callers,
                &mut latency,
                &mut completed,
                &mut last_settled,
            ) {
                break;
            }
        }
    }

    Ok(CongestionReport {
        policy: cfg.policy,
        calls: cfg.clients,
        completed,
        failed,
        transmissions,
        retransmits,
        link: net.link_stats(),
        elapsed: last_settled,
        latency,
    })
}

/// Run the full strategy comparison: every policy from
/// [`CongestionConfig::strategies`] over the same config, in order.
pub fn run_congestion_matrix(
    cfg: &CongestionConfig,
) -> Result<Vec<CongestionReport>, PipelineError> {
    cfg.strategies()
        .into_iter()
        .map(|policy| run_congestion(&cfg.clone().with_policy(policy)))
        .collect()
}

/// Build the scenario's dispatch registry: the paper's echo procedure,
/// specialized to the configured payload shape.
pub fn deploy_congestion_service(
    cfg: &CongestionConfig,
) -> Result<std::sync::Arc<SvcRegistry>, PipelineError> {
    let proc_ = std::sync::Arc::new(build_echo_proc(cfg.payload, Some(32))?);
    Ok(SpecService::new()
        .proc(proc_, |args: &StubArgs| {
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .into_registry())
}

/// One pre-encoded echo request; the per-call xid is patched into the
/// first four bytes.
fn encode_echo_template(payload: usize) -> Vec<u8> {
    let mut enc = XdrMem::encoder(64 + 4 * payload);
    let mut hdr = CallHeader::new(0, ECHO_PROG, ECHO_VERS, 1);
    CallHeader::xdr(&mut enc, &mut hdr).expect("header encode");
    let mut data: Vec<i32> = (0..payload as i32).collect();
    xdr_array(&mut enc, &mut data, MAX_ARR, xdr_int).expect("array encode");
    let len = enc.getpos();
    enc.bytes()[..len].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overloaded_burst_drops_and_recovers() {
        let report = run_congestion(&CongestionConfig::smoke()).unwrap();
        assert_eq!(report.calls, 48);
        assert!(
            report.link.queue_drops > 0,
            "a burst 4× the queue cap must drop-tail: {:?}",
            report.link
        );
        assert!(
            report.link.queue_depth_high_water >= 12,
            "the bounded queue must have filled: {:?}",
            report.link
        );
        assert!(report.retransmits > 0, "drops must force retransmissions");
        assert_eq!(
            report.completed + report.failed,
            48,
            "every call settles one way or the other"
        );
        assert!(
            report.completed >= 40,
            "retransmission recovers most of the burst: {}",
            report.completed
        );
    }

    #[test]
    fn reports_are_byte_identical_across_runs() {
        let cfg = CongestionConfig::smoke().with_faults(FaultConfig::LOSSY);
        let a = run_congestion(&cfg).unwrap();
        let b = run_congestion(&cfg).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.link, b.link);
    }

    #[test]
    fn backoff_retransmits_less_than_fixed_under_overload() {
        let cfg = CongestionConfig::smoke();
        let [_, backoff_policy, _] = cfg.strategies();
        let fixed = run_congestion(&cfg).unwrap();
        let backoff = run_congestion(&cfg.clone().with_policy(backoff_policy)).unwrap();
        assert!(
            backoff.retransmits < fixed.retransmits,
            "backoff {} must undercut fixed {}",
            backoff.retransmits,
            fixed.retransmits
        );
    }

    #[test]
    fn pacing_spreads_the_resend_storm() {
        let cfg = CongestionConfig::smoke();
        let [_, _, paced_policy] = cfg.strategies();
        let fixed = run_congestion(&cfg).unwrap();
        let paced = run_congestion(&cfg.clone().with_policy(paced_policy)).unwrap();
        // The paced schedule must actually have engaged the pacer (same
        // per-try timeout as fixed, different release times).
        assert!(paced.retransmits > 0);
        assert!(
            paced.link.queue_drops < fixed.link.queue_drops,
            "pacing must shed queue drops: paced {} vs fixed {}",
            paced.link.queue_drops,
            fixed.link.queue_drops
        );
    }

    #[test]
    fn matrix_runs_all_three_strategies() {
        let mut cfg = CongestionConfig::smoke();
        cfg.clients = 24;
        let reports = run_congestion_matrix(&cfg).unwrap();
        let labels: Vec<&str> = reports.iter().map(|r| r.policy_label()).collect();
        assert_eq!(labels, ["fixed", "expbackoff", "paced"]);
        for r in &reports {
            assert_eq!(r.completed + r.failed, 24, "{}", r.policy_label());
        }
    }

    #[test]
    fn render_carries_the_link_and_strategy_lines() {
        let mut cfg = CongestionConfig::smoke();
        cfg.clients = 16;
        let text = run_congestion(&cfg).unwrap().render();
        assert!(text.contains("link queues:"), "{text}");
        assert!(
            text.contains("retransmission strategy:        fixed"),
            "{text}"
        );
        assert!(text.contains("congestion outcome:"), "{text}");
    }

    #[test]
    fn uncongested_run_is_drop_free_and_complete() {
        let mut cfg = CongestionConfig::smoke();
        // Stretch the window far past the demand: no standing queue.
        cfg.span = SimTime::from_millis(40);
        cfg.rx_queue_cap = usize::MAX;
        let report = run_congestion(&cfg).unwrap();
        assert_eq!(report.completed, 48);
        assert_eq!(report.failed, 0);
        assert_eq!(report.link.queue_drops, 0);
        assert_eq!(report.retransmits, 0, "no congestion, no retries");
    }
}
