//! The transport-facing specialized client and server.
//!
//! The specialized path replaces header + argument marshaling with
//! compiled residual stubs but keeps the protocol machinery (xid
//! allocation, retransmission, reply matching) — specialization removes
//! interpretation, not the protocol. Every dynamic guard failure falls
//! back to the generic path, preserving the original semantics (§6.2).

use crate::pipeline::CompiledProc;
use specrpc_rpc::error::RpcError;
use specrpc_rpc::msg::ReplyHeader;
use specrpc_rpc::svc::SvcRegistry;
use specrpc_rpc::ClntUdp;
use specrpc_rpcgen::sunlib::{call_fields, reply_fields};
use specrpc_tempo::compile::{run_decode, run_encode, Outcome, StubArgs};
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::{OpCounts, XdrResult, XdrStream};
use std::rc::Rc;

/// Which path served a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathUsed {
    /// The compiled specialized stubs.
    Fast,
    /// The generic micro-layer path (guard fallback).
    GenericFallback,
}

/// A specialized RPC client for one procedure: compiled stubs over the
/// shared UDP transaction layer, with a generic decoder fallback.
pub struct FastClient {
    clnt: ClntUdp,
    proc_: Rc<CompiledProc>,
    /// Stub-op and byte counts from specialized marshaling.
    pub counts: OpCounts,
    /// Calls served by the fast path.
    pub fast_calls: u64,
    /// Calls that fell back to the generic decoder.
    pub fallback_calls: u64,
}

impl FastClient {
    /// Wrap a transport client with compiled stubs.
    pub fn new(clnt: ClntUdp, proc_: Rc<CompiledProc>) -> Self {
        FastClient {
            clnt,
            proc_,
            counts: OpCounts::new(),
            fast_calls: 0,
            fallback_calls: 0,
        }
    }

    /// Access the underlying transport client (timeout tuning).
    pub fn transport_mut(&mut self) -> &mut ClntUdp {
        &mut self.clnt
    }

    /// Perform the call: `args` carries the user argument slots (scalars
    /// *after* the xid slot 0, arrays from 0) — build it with
    /// [`FastClient::args`]. Returns the result slots and which path
    /// decoded the reply.
    pub fn call(&mut self, args: &StubArgs) -> Result<(StubArgs, PathUsed), RpcError> {
        let xid = self.clnt.next_xid();
        let mut request = vec![0u8; self.proc_.client_encode.wire_len];
        let mut full_args = args.clone();
        full_args.scalars[0] = xid as i32;
        run_encode(
            &self.proc_.client_encode.program,
            &mut request,
            &full_args,
            &mut self.counts,
        )
        .map_err(|e| RpcError::Transport(e.to_string()))?;

        let reply = self.clnt.exchange(request, xid)?;

        // Specialized decode with generic fallback.
        let dec = &self.proc_.client_decode;
        let mut out = StubArgs::new(
            vec![0; dec.layout.scalar_count as usize],
            vec![Vec::new(); dec.layout.array_count as usize],
        );
        match run_decode(
            &dec.program,
            &reply,
            &mut out,
            reply.len(),
            &mut self.counts,
        ) {
            Ok(Outcome::Done { ret: 1, .. }) => {
                self.fast_calls += 1;
                Ok((out, PathUsed::Fast))
            }
            Ok(Outcome::Done { .. }) | Ok(Outcome::Fallback) => {
                self.fallback_calls += 1;
                let out = self.decode_generic(&reply)?;
                Ok((out, PathUsed::GenericFallback))
            }
            Err(e) => Err(RpcError::Transport(e.to_string())),
        }
    }

    /// Build the argument [`StubArgs`] with the xid slot reserved.
    pub fn args(&self, scalars: Vec<i32>, arrays: Vec<Vec<i32>>) -> StubArgs {
        let mut all = Vec::with_capacity(scalars.len() + 1);
        all.push(0); // xid slot
        all.extend(scalars);
        StubArgs::new(all, arrays)
    }

    /// The generic reply path (§6.2 `else` branch): full header
    /// validation and layered decoding.
    fn decode_generic(&mut self, reply: &[u8]) -> Result<StubArgs, RpcError> {
        let mut dec = XdrMem::decoder(reply);
        let hdr = ReplyHeader::decode(&mut dec)?;
        if let Some(err) = hdr.to_error() {
            return Err(err);
        }
        let decp = &self.proc_.client_decode;
        let mut out = StubArgs::new(
            vec![0; decp.layout.scalar_count as usize],
            vec![Vec::new(); decp.layout.array_count as usize],
        );
        decode_shape_generic(
            &mut dec,
            &self.proc_.res_shape,
            &decp.layout,
            reply_fields::COUNT as u16,
            &mut out,
        )?;
        self.clnt.counts += *dec.counts();
        Ok(out)
    }
}

/// Decode a message shape through the generic micro-layers into StubArgs
/// slots (shared by client fallback and server fallback).
pub fn decode_shape_generic(
    xdrs: &mut dyn XdrStream,
    shape: &specrpc_rpcgen::stubgen::MsgShape,
    layout: &specrpc_rpcgen::stubgen::ShapeLayout,
    scalar_base: u16,
    out: &mut StubArgs,
) -> XdrResult {
    use specrpc_rpcgen::stubgen::FieldShape;
    let mut s = scalar_base as usize;
    let mut a = 0usize;
    for f in &shape.fields {
        match f {
            FieldShape::Scalar { .. } => {
                specrpc_xdr::primitives::xdr_int(xdrs, &mut out.scalars[s])?;
                s += 1;
            }
            FieldShape::VarIntArray { max, .. } => {
                specrpc_xdr::composite::xdr_array(
                    xdrs,
                    &mut out.arrays[a],
                    (*max).min(u32::MAX as usize),
                    specrpc_xdr::primitives::xdr_int,
                )?;
                a += 1;
            }
            FieldShape::FixedIntArray { len, .. } => {
                out.arrays[a].clear();
                out.arrays[a].resize(*len, 0);
                let arr = &mut out.arrays[a];
                specrpc_xdr::composite::xdr_vector(
                    xdrs,
                    arr.as_mut_slice(),
                    specrpc_xdr::primitives::xdr_int,
                )?;
                a += 1;
            }
        }
    }
    let _ = layout;
    Ok(())
}

/// Encode a message shape through the generic micro-layers from StubArgs
/// slots.
pub fn encode_shape_generic(
    xdrs: &mut dyn XdrStream,
    shape: &specrpc_rpcgen::stubgen::MsgShape,
    scalar_base: u16,
    args: &mut StubArgs,
) -> XdrResult {
    use specrpc_rpcgen::stubgen::FieldShape;
    let mut s = scalar_base as usize;
    let mut a = 0usize;
    for f in &shape.fields {
        match f {
            FieldShape::Scalar { .. } => {
                specrpc_xdr::primitives::xdr_int(xdrs, &mut args.scalars[s])?;
                s += 1;
            }
            FieldShape::VarIntArray { max, .. } => {
                specrpc_xdr::composite::xdr_array(
                    xdrs,
                    &mut args.arrays[a],
                    (*max).min(u32::MAX as usize),
                    specrpc_xdr::primitives::xdr_int,
                )?;
                a += 1;
            }
            FieldShape::FixedIntArray { .. } => {
                specrpc_xdr::composite::xdr_vector(
                    xdrs,
                    args.arrays[a].as_mut_slice(),
                    specrpc_xdr::primitives::xdr_int,
                )?;
                a += 1;
            }
        }
    }
    Ok(())
}

/// A user service function for the fast server: argument slots in,
/// result slots out.
pub type FastHandler = Rc<dyn Fn(&StubArgs) -> StubArgs>;

/// The specialized server: installs a raw fast-path handler (compiled
/// decode → user function → compiled encode) and a generic handler for
/// fallback, on the same registry.
pub struct FastServer;

impl FastServer {
    /// Install `handler` for `proc_`'s procedure, both fast and generic.
    pub fn install(registry: &mut SvcRegistry, proc_: Rc<CompiledProc>, handler: FastHandler) {
        let (prog, vers, pnum) = proc_.target;

        // Fast path.
        let p = proc_.clone();
        let h = handler.clone();
        registry.register_raw(
            prog,
            vers,
            pnum,
            Box::new(move |request: &[u8]| {
                let dec = &p.server_decode;
                let mut counts = OpCounts::new();
                let mut args = StubArgs::new(
                    vec![0; dec.layout.scalar_count as usize],
                    vec![Vec::new(); dec.layout.array_count as usize],
                );
                match run_decode(&dec.program, request, &mut args, request.len(), &mut counts) {
                    Ok(Outcome::Done { ret: 1, .. }) => {}
                    _ => return None, // guard failed → generic path
                }
                let xid = args.scalars[call_fields::XID];
                let results = h(&args);
                let enc = &p.server_encode;
                let mut full = results;
                // Reply stub scalar slot 0 is the xid.
                full.scalars.insert(0, xid);
                let mut reply = vec![0u8; enc.wire_len];
                match run_encode(&enc.program, &mut reply, &full, &mut counts) {
                    Ok(Outcome::Done { ret: 1, .. }) => Some(reply),
                    _ => None,
                }
            }),
        );

        // Generic path (also serves guard fallbacks).
        let p = proc_;
        let h = handler;
        registry.register(
            prog,
            vers,
            pnum,
            Box::new(move |args_x, results_x| {
                let dec = &p.server_decode;
                let mut args = StubArgs::new(
                    vec![0; dec.layout.scalar_count as usize],
                    vec![Vec::new(); dec.layout.array_count as usize],
                );
                decode_shape_generic(
                    args_x,
                    &p.arg_shape,
                    &dec.layout,
                    call_fields::COUNT as u16,
                    &mut args,
                )
                .map_err(RpcError::from)?;
                let mut results = h(&args);
                // Generic results have no xid scratch; encode from slot 0.
                encode_shape_generic(results_x, &p.res_shape, 0, &mut results)
                    .map_err(RpcError::from)?;
                Ok(())
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ProcPipeline;
    use specrpc_netsim::net::{Network, NetworkConfig};
    use specrpc_rpc::svc_udp::serve_udp;
    use std::cell::RefCell;

    const IDL: &str = r#"
        const MAXARR = 2000;
        struct int_arr { int arr<MAXARR>; };
        program ARRAYPROG {
            version ARRAYVERS { int_arr ECHO(int_arr) = 1; } = 1;
        } = 0x20000101;
    "#;

    fn setup(n: usize) -> (Network, FastClient, Rc<RefCell<SvcRegistry>>) {
        let cp = Rc::new(ProcPipeline::new(n).build_from_idl(IDL, None, 1).unwrap());
        let net = Network::new(NetworkConfig::lan(), 7);
        let mut reg = SvcRegistry::new();
        let handler: FastHandler = Rc::new(|args: &StubArgs| {
            // Echo with doubling so we can see the server ran.
            let doubled: Vec<i32> = args.arrays[0].iter().map(|v| v * 2).collect();
            StubArgs::new(vec![], vec![doubled])
        });
        FastServer::install(&mut reg, cp.clone(), handler);
        let reg = Rc::new(RefCell::new(reg));
        serve_udp(&net, 800, reg.clone(), None);
        let clnt = ClntUdp::create(&net, 5100, 800, 0x2000_0101, 1);
        (net, FastClient::new(clnt, cp), reg)
    }

    #[test]
    fn fast_call_round_trips() {
        let (_net, mut client, reg) = setup(10);
        let data: Vec<i32> = (0..10).collect();
        let args = client.args(vec![], vec![data.clone()]);
        let (out, path) = client.call(&args).unwrap();
        assert_eq!(path, PathUsed::Fast);
        let want: Vec<i32> = data.iter().map(|v| v * 2).collect();
        assert_eq!(out.arrays[0], want);
        assert_eq!(reg.borrow().raw_dispatches, 1);
        assert_eq!(reg.borrow().generic_dispatches, 0);
        assert!(client.counts.stub_ops > 0);
    }

    #[test]
    fn generic_client_triggers_server_guard_fallback() {
        // The server is specialized for 10 elements. A *generic* client
        // sends 7: the server's inlen guard fails, the generic dispatch
        // answers, and semantics are preserved (§6.2 else branch).
        let (net, _fast_client, reg) = setup(10);
        let mut generic = ClntUdp::create(&net, 5200, 800, 0x2000_0101, 1);
        let mut out: Vec<i32> = Vec::new();
        generic
            .call(
                1,
                &mut |x| {
                    let mut v: Vec<i32> = (0..7).collect();
                    specrpc_xdr::composite::xdr_array(
                        x,
                        &mut v,
                        2000,
                        specrpc_xdr::primitives::xdr_int,
                    )
                },
                &mut |x| {
                    specrpc_xdr::composite::xdr_array(
                        x,
                        &mut out,
                        2000,
                        specrpc_xdr::primitives::xdr_int,
                    )
                },
            )
            .unwrap();
        let want: Vec<i32> = (0..7).map(|v| v * 2).collect();
        assert_eq!(out, want);
        assert_eq!(reg.borrow().raw_fallbacks, 1);
        assert_eq!(reg.borrow().generic_dispatches, 1);
    }

    #[test]
    fn error_reply_reaches_client_through_fallback() {
        // Call a procedure number the server does not implement via the
        // fast client: the ProcUnavail reply fails the reply guard, the
        // generic decoder runs and surfaces the proper error.
        let cp10 = Rc::new(ProcPipeline::new(1).build_from_idl(IDL, None, 1).unwrap());
        let net = Network::new(NetworkConfig::lan(), 9);
        let reg = Rc::new(RefCell::new(SvcRegistry::new()));
        // Program registered with no procedures beyond NULL.
        reg.borrow_mut()
            .register(0x2000_0101, 1, 0, Box::new(|_, _| Ok(())));
        serve_udp(&net, 801, reg, None);
        let clnt = ClntUdp::create(&net, 5300, 801, 0x2000_0101, 1);
        let mut client = FastClient::new(clnt, cp10);
        let args = client.args(vec![], vec![vec![42]]);
        let err = client.call(&args).unwrap_err();
        assert_eq!(err, RpcError::ProcUnavail);
        assert_eq!(client.fallback_calls, 1);
    }

    #[test]
    fn wrong_wire_size_from_client_side() {
        // Encode stub wire length is fixed per context; sending a
        // different count than the pinned length is a caller error the
        // stub detects as BadElem (too few) — the API requires matching
        // the context, mirroring per-size specialized binaries (Table 3).
        let (_net, mut client, _reg) = setup(10);
        let args = client.args(vec![], vec![vec![1, 2, 3]]);
        assert!(client.call(&args).is_err());
    }
}
