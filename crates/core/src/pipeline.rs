//! The IDL-to-specialized-stub driver: `rpcgen → Tempo → compiled stubs`
//! for every procedure/context a program wants specialized.

use specrpc_rpcgen::ast::ProcDef;
use specrpc_rpcgen::parser::{parse, ParseError};
use specrpc_rpcgen::stubgen::{
    self, CompiledStub, GeneratedStubs, MsgShape, StubGenError, StubKind,
};
use std::fmt;

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// IDL parsing failed.
    Parse(ParseError),
    /// The program/procedure was not found in the IDL.
    NoSuchProc {
        /// Program name searched for (empty = first program).
        program: String,
        /// Procedure number.
        proc_num: u32,
    },
    /// The procedure's shapes are outside the specializable subset
    /// (use the generic path).
    UnsupportedShape,
    /// Specialization or compilation failed.
    StubGen(StubGenError),
    /// A client builder was finished without naming a procedure.
    NoProcGiven,
    /// Deploying over a transport failed (e.g. TCP connect refused).
    Deploy(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "IDL parse error: {e}"),
            PipelineError::NoSuchProc { program, proc_num } => {
                write!(f, "no procedure {proc_num} in program `{program}`")
            }
            PipelineError::UnsupportedShape => {
                write!(f, "procedure shapes not specializable; generic path only")
            }
            PipelineError::StubGen(e) => write!(f, "{e}"),
            PipelineError::NoProcGiven => {
                write!(f, "SpecClient builder needs .proc(...) or .compiled(...)")
            }
            PipelineError::Deploy(e) => write!(f, "deploy failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<StubGenError> for PipelineError {
    fn from(e: StubGenError) -> Self {
        PipelineError::StubGen(e)
    }
}

/// Power-of-two unroll bounds considered by the automatic bound picker
/// ([`ProcPipeline::with_icache_budget`]) and swept by the unroll
/// benchmark / the knee detector in `examples/specialization_report.rs`
/// (one source, so the tuner and the measured curve always cover the
/// same candidates).
pub const UNROLL_CANDIDATES: [usize; 10] = [8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// All four compiled stubs of one procedure in one specialization context.
#[derive(Debug)]
pub struct CompiledProc {
    /// (program, version, procedure) numbers.
    pub target: (u32, u32, u32),
    /// The unroll bound the stubs were compiled with (`None` = full
    /// unrolling) — explicit via [`ProcPipeline::with_chunk`] or picked
    /// automatically by [`ProcPipeline::with_icache_budget`].
    pub unroll_bound: Option<usize>,
    /// Client request encoder.
    pub client_encode: CompiledStub,
    /// Client reply decoder.
    pub client_decode: CompiledStub,
    /// Server request decoder.
    pub server_decode: CompiledStub,
    /// Server reply encoder.
    pub server_encode: CompiledStub,
    /// Argument shape.
    pub arg_shape: MsgShape,
    /// Result shape.
    pub res_shape: MsgShape,
    /// The generated (unspecialized) stubs, kept for inspection and
    /// reports.
    pub generated: GeneratedStubs,
}

/// A resolved specialization target: `(program, version, procedure)`
/// numbers plus argument and result shapes.
pub type ResolvedTarget = ((u32, u32, u32), MsgShape, MsgShape);

/// Builder for [`CompiledProc`]s.
#[derive(Debug, Clone, Default)]
pub struct ProcPipeline {
    /// Pinned length for counted arrays (the paper's per-size contexts).
    pub pinned_len: usize,
    /// Bounded-unroll chunk (Table 4); `None` = full unrolling (unless
    /// an icache budget picks a bound automatically).
    pub chunk: Option<usize>,
    /// Target instruction-cache footprint for the residual stubs: when
    /// set (and no explicit chunk overrides it), the pipeline picks the
    /// unroll bound itself — the feedback loop the unroll-knee sweep of
    /// `examples/specialization_report.rs` motivates.
    pub icache_budget: Option<usize>,
}

impl ProcPipeline {
    /// A pipeline with the given specialization context.
    pub fn new(pinned_len: usize) -> Self {
        ProcPipeline {
            pinned_len,
            chunk: None,
            icache_budget: None,
        }
    }

    /// Use bounded unrolling with the given chunk.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk);
        self
    }

    /// Pick the unroll bound automatically from a target
    /// instruction-cache budget (bytes), e.g. a platform's
    /// `icache_capacity_bytes`: full unrolling when the whole residual
    /// encoder fits, otherwise the **largest** [`UNROLL_CANDIDATES`]
    /// bound whose compiled client-encode stub still fits (largest =
    /// fewest residual loop iterations for the allowed footprint; past
    /// the budget, every extra op pays the icache-miss penalty the
    /// Table 4 sweep measures). An explicit [`ProcPipeline::with_chunk`]
    /// always wins over the budget.
    pub fn with_icache_budget(mut self, budget_bytes: usize) -> Self {
        self.icache_budget = Some(budget_bytes);
        self
    }

    /// Resolve the `(program, version, procedure)` numbers and message
    /// shapes for `proc_num` of the first (or named) program — the
    /// specialization-context identity, without running Tempo. This is
    /// what [`crate::cache::StubCache`] keys on.
    pub fn resolve_shapes(
        &self,
        idl: &str,
        program: Option<&str>,
        proc_num: u32,
    ) -> Result<ResolvedTarget, PipelineError> {
        let file = parse(idl)?;
        let prog = file
            .programs()
            .into_iter()
            .find(|p| program.map(|n| p.name == n).unwrap_or(true))
            .ok_or_else(|| PipelineError::NoSuchProc {
                program: program.unwrap_or("").to_string(),
                proc_num,
            })?
            .clone();
        let vers = prog
            .versions
            .first()
            .ok_or_else(|| PipelineError::NoSuchProc {
                program: prog.name.clone(),
                proc_num,
            })?;
        let proc_: &ProcDef = vers
            .procs
            .iter()
            .find(|p| p.number == proc_num)
            .ok_or_else(|| PipelineError::NoSuchProc {
                program: prog.name.clone(),
                proc_num,
            })?;
        let arg = MsgShape::from_idl(&file, &proc_.arg, self.pinned_len)
            .ok_or(PipelineError::UnsupportedShape)?;
        let res = MsgShape::from_idl(&file, &proc_.result, self.pinned_len)
            .ok_or(PipelineError::UnsupportedShape)?;
        Ok(((prog.number, vers.number, proc_num), arg, res))
    }

    /// Run the full pipeline from IDL source for procedure `proc_num` of
    /// the first (or named) program.
    pub fn build_from_idl(
        &self,
        idl: &str,
        program: Option<&str>,
        proc_num: u32,
    ) -> Result<CompiledProc, PipelineError> {
        let ((prog_num, vers_num, proc_num), arg, res) =
            self.resolve_shapes(idl, program, proc_num)?;
        self.build_from_shapes(prog_num, vers_num, proc_num, arg, res)
    }

    /// Run the pipeline from explicit message shapes.
    pub fn build_from_shapes(
        &self,
        prog_num: u32,
        vers_num: u32,
        proc_num: u32,
        arg: MsgShape,
        res: MsgShape,
    ) -> Result<CompiledProc, PipelineError> {
        let gs = stubgen::generate_from_shapes(prog_num, vers_num, proc_num, arg, res);
        self.compile_all(gs)
    }

    fn compile_all(&self, gs: GeneratedStubs) -> Result<CompiledProc, PipelineError> {
        let chunk = self.effective_chunk(&gs)?;
        let client_encode = stubgen::specialize_stub(&gs, StubKind::ClientEncode, chunk)?;
        let client_decode = stubgen::specialize_stub(&gs, StubKind::ClientDecode, chunk)?;
        let server_decode = stubgen::specialize_stub(&gs, StubKind::ServerDecode, chunk)?;
        let server_encode = stubgen::specialize_stub(&gs, StubKind::ServerEncode, chunk)?;
        Ok(CompiledProc {
            target: gs.target,
            unroll_bound: chunk,
            client_encode,
            client_decode,
            server_decode,
            server_encode,
            arg_shape: gs.arg_shape.clone(),
            res_shape: gs.res_shape.clone(),
            generated: gs,
        })
    }

    /// Resolve the unroll bound this pipeline will compile with: the
    /// explicit chunk if set, otherwise the bound the icache budget
    /// picks (compiling trial client-encode stubs to measure real
    /// residual code sizes), otherwise full unrolling.
    fn effective_chunk(&self, gs: &GeneratedStubs) -> Result<Option<usize>, PipelineError> {
        if self.chunk.is_some() {
            return Ok(self.chunk);
        }
        let Some(budget) = self.icache_budget else {
            return Ok(None);
        };
        let code_bytes = |chunk: Option<usize>| -> Result<usize, PipelineError> {
            let stub = stubgen::specialize_stub(gs, StubKind::ClientEncode, chunk)?;
            Ok(stub.program.code_size_bytes())
        };
        if code_bytes(None)? <= budget {
            return Ok(None); // the full unroll already fits
        }
        let mut smallest_applicable = None;
        for &c in UNROLL_CANDIDATES.iter().rev() {
            // A bound only re-rolls element runs of at least 2×bound ops;
            // larger bounds compile to the full unroll we just rejected.
            if 2 * c > self.pinned_len {
                continue;
            }
            if code_bytes(Some(c))? <= budget {
                return Ok(Some(c));
            }
            smallest_applicable = Some(c);
        }
        // Nothing fits (or no candidate applies): the smallest applicable
        // bound is the best effort — the tightest residual we can emit.
        Ok(smallest_applicable)
    }

    /// The unroll bound [`ProcPipeline::build_from_idl`] would compile
    /// `proc_num` with — exposed so reports can show what an icache
    /// budget picked without keeping the compile.
    pub fn auto_chunk_from_idl(
        &self,
        idl: &str,
        program: Option<&str>,
        proc_num: u32,
    ) -> Result<Option<usize>, PipelineError> {
        let ((prog_num, vers_num, proc_num), arg, res) =
            self.resolve_shapes(idl, program, proc_num)?;
        let gs = stubgen::generate_from_shapes(prog_num, vers_num, proc_num, arg, res);
        self.effective_chunk(&gs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDL: &str = r#"
        const MAXARR = 2000;
        struct int_arr { int arr<MAXARR>; };
        program ARRAYPROG {
            version ARRAYVERS { int_arr ECHO(int_arr) = 1; } = 1;
        } = 0x20000101;
    "#;

    #[test]
    fn builds_all_four_stubs_from_idl() {
        let cp = ProcPipeline::new(100).build_from_idl(IDL, None, 1).unwrap();
        assert_eq!(cp.target, (0x2000_0101, 1, 1));
        assert_eq!(cp.client_encode.wire_len, 40 + 4 + 400);
        assert_eq!(cp.client_decode.wire_len, 24 + 4 + 400);
        assert!(cp.client_encode.program.len() > 100);
    }

    #[test]
    fn chunked_pipeline_shrinks_stub() {
        let full = ProcPipeline::new(1000)
            .build_from_idl(IDL, None, 1)
            .unwrap();
        let chunked = ProcPipeline::new(1000)
            .with_chunk(250)
            .build_from_idl(IDL, None, 1)
            .unwrap();
        assert!(chunked.client_encode.program.len() < full.client_encode.program.len() / 3);
    }

    #[test]
    fn icache_budget_picks_full_unroll_when_it_fits() {
        let cp = ProcPipeline::new(100)
            .with_icache_budget(1 << 20)
            .build_from_idl(IDL, None, 1)
            .unwrap();
        assert_eq!(cp.unroll_bound, None, "a huge budget needs no bound");
    }

    #[test]
    fn icache_budget_picks_the_largest_bound_that_fits() {
        let n = 2000;
        let full = ProcPipeline::new(n).build_from_idl(IDL, None, 1).unwrap();
        let full_bytes = full.client_encode.program.code_size_bytes();
        // A budget at 1/4 of the full footprint forces a real bound.
        let budget = full_bytes / 4;
        let cp = ProcPipeline::new(n)
            .with_icache_budget(budget)
            .build_from_idl(IDL, None, 1)
            .unwrap();
        let bound = cp.unroll_bound.expect("budget must pick a bound");
        assert!(UNROLL_CANDIDATES.contains(&bound), "{bound}");
        assert!(
            cp.client_encode.program.code_size_bytes() <= budget,
            "picked stub must fit the budget"
        );
        // Maximality: the next larger applicable candidate must NOT fit.
        if let Some(&next) = UNROLL_CANDIDATES.iter().find(|&&c| c > bound) {
            if 2 * next <= n {
                let bigger = ProcPipeline::new(n)
                    .with_chunk(next)
                    .build_from_idl(IDL, None, 1)
                    .unwrap();
                assert!(
                    bigger.client_encode.program.code_size_bytes() > budget,
                    "a larger bound would have fit — picker not maximal"
                );
            }
        }
        // The auto-pick is observable without compiling all four stubs.
        assert_eq!(
            ProcPipeline::new(n)
                .with_icache_budget(budget)
                .auto_chunk_from_idl(IDL, None, 1)
                .unwrap(),
            Some(bound)
        );
    }

    #[test]
    fn icache_budget_degrades_to_smallest_bound_when_nothing_fits() {
        let cp = ProcPipeline::new(2000)
            .with_icache_budget(1) // absurd: nothing fits
            .build_from_idl(IDL, None, 1)
            .unwrap();
        assert_eq!(cp.unroll_bound, Some(8), "tightest residual is best effort");
    }

    #[test]
    fn explicit_chunk_overrides_the_budget() {
        let cp = ProcPipeline::new(2000)
            .with_icache_budget(1)
            .with_chunk(250)
            .build_from_idl(IDL, None, 1)
            .unwrap();
        assert_eq!(cp.unroll_bound, Some(250));
    }

    #[test]
    fn missing_procedure_is_reported() {
        let err = ProcPipeline::new(10)
            .build_from_idl(IDL, None, 99)
            .unwrap_err();
        assert!(matches!(
            err,
            PipelineError::NoSuchProc { proc_num: 99, .. }
        ));
    }

    #[test]
    fn unsupported_shape_is_reported() {
        let idl = r#"
            struct s { string x<8>; };
            program P { version V { s F(s) = 1; } = 1; } = 7;
        "#;
        let err = ProcPipeline::new(10)
            .build_from_idl(idl, None, 1)
            .unwrap_err();
        assert!(matches!(err, PipelineError::UnsupportedShape));
    }

    #[test]
    fn parse_error_is_reported() {
        let err = ProcPipeline::new(10)
            .build_from_idl("struct {", None, 1)
            .unwrap_err();
        assert!(matches!(err, PipelineError::Parse(_)));
    }
}
