//! The IDL-to-specialized-stub driver: `rpcgen → Tempo → compiled stubs`
//! for every procedure/context a program wants specialized.

use specrpc_rpcgen::ast::ProcDef;
use specrpc_rpcgen::parser::{parse, ParseError};
use specrpc_rpcgen::stubgen::{
    self, CompiledStub, GeneratedStubs, MsgShape, StubGenError, StubKind,
};
use std::fmt;

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// IDL parsing failed.
    Parse(ParseError),
    /// The program/procedure was not found in the IDL.
    NoSuchProc {
        /// Program name searched for (empty = first program).
        program: String,
        /// Procedure number.
        proc_num: u32,
    },
    /// The procedure's shapes are outside the specializable subset
    /// (use the generic path).
    UnsupportedShape,
    /// Specialization or compilation failed.
    StubGen(StubGenError),
    /// A client builder was finished without naming a procedure.
    NoProcGiven,
    /// Deploying over a transport failed (e.g. TCP connect refused).
    Deploy(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "IDL parse error: {e}"),
            PipelineError::NoSuchProc { program, proc_num } => {
                write!(f, "no procedure {proc_num} in program `{program}`")
            }
            PipelineError::UnsupportedShape => {
                write!(f, "procedure shapes not specializable; generic path only")
            }
            PipelineError::StubGen(e) => write!(f, "{e}"),
            PipelineError::NoProcGiven => {
                write!(f, "SpecClient builder needs .proc(...) or .compiled(...)")
            }
            PipelineError::Deploy(e) => write!(f, "deploy failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<StubGenError> for PipelineError {
    fn from(e: StubGenError) -> Self {
        PipelineError::StubGen(e)
    }
}

/// All four compiled stubs of one procedure in one specialization context.
#[derive(Debug)]
pub struct CompiledProc {
    /// (program, version, procedure) numbers.
    pub target: (u32, u32, u32),
    /// Client request encoder.
    pub client_encode: CompiledStub,
    /// Client reply decoder.
    pub client_decode: CompiledStub,
    /// Server request decoder.
    pub server_decode: CompiledStub,
    /// Server reply encoder.
    pub server_encode: CompiledStub,
    /// Argument shape.
    pub arg_shape: MsgShape,
    /// Result shape.
    pub res_shape: MsgShape,
    /// The generated (unspecialized) stubs, kept for inspection and
    /// reports.
    pub generated: GeneratedStubs,
}

/// A resolved specialization target: `(program, version, procedure)`
/// numbers plus argument and result shapes.
pub type ResolvedTarget = ((u32, u32, u32), MsgShape, MsgShape);

/// Builder for [`CompiledProc`]s.
#[derive(Debug, Clone, Default)]
pub struct ProcPipeline {
    /// Pinned length for counted arrays (the paper's per-size contexts).
    pub pinned_len: usize,
    /// Bounded-unroll chunk (Table 4); `None` = full unrolling.
    pub chunk: Option<usize>,
}

impl ProcPipeline {
    /// A pipeline with the given specialization context.
    pub fn new(pinned_len: usize) -> Self {
        ProcPipeline {
            pinned_len,
            chunk: None,
        }
    }

    /// Use bounded unrolling with the given chunk.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk);
        self
    }

    /// Resolve the `(program, version, procedure)` numbers and message
    /// shapes for `proc_num` of the first (or named) program — the
    /// specialization-context identity, without running Tempo. This is
    /// what [`crate::cache::StubCache`] keys on.
    pub fn resolve_shapes(
        &self,
        idl: &str,
        program: Option<&str>,
        proc_num: u32,
    ) -> Result<ResolvedTarget, PipelineError> {
        let file = parse(idl)?;
        let prog = file
            .programs()
            .into_iter()
            .find(|p| program.map(|n| p.name == n).unwrap_or(true))
            .ok_or_else(|| PipelineError::NoSuchProc {
                program: program.unwrap_or("").to_string(),
                proc_num,
            })?
            .clone();
        let vers = prog
            .versions
            .first()
            .ok_or_else(|| PipelineError::NoSuchProc {
                program: prog.name.clone(),
                proc_num,
            })?;
        let proc_: &ProcDef = vers
            .procs
            .iter()
            .find(|p| p.number == proc_num)
            .ok_or_else(|| PipelineError::NoSuchProc {
                program: prog.name.clone(),
                proc_num,
            })?;
        let arg = MsgShape::from_idl(&file, &proc_.arg, self.pinned_len)
            .ok_or(PipelineError::UnsupportedShape)?;
        let res = MsgShape::from_idl(&file, &proc_.result, self.pinned_len)
            .ok_or(PipelineError::UnsupportedShape)?;
        Ok(((prog.number, vers.number, proc_num), arg, res))
    }

    /// Run the full pipeline from IDL source for procedure `proc_num` of
    /// the first (or named) program.
    pub fn build_from_idl(
        &self,
        idl: &str,
        program: Option<&str>,
        proc_num: u32,
    ) -> Result<CompiledProc, PipelineError> {
        let ((prog_num, vers_num, proc_num), arg, res) =
            self.resolve_shapes(idl, program, proc_num)?;
        self.build_from_shapes(prog_num, vers_num, proc_num, arg, res)
    }

    /// Run the pipeline from explicit message shapes.
    pub fn build_from_shapes(
        &self,
        prog_num: u32,
        vers_num: u32,
        proc_num: u32,
        arg: MsgShape,
        res: MsgShape,
    ) -> Result<CompiledProc, PipelineError> {
        let gs = stubgen::generate_from_shapes(prog_num, vers_num, proc_num, arg, res);
        self.compile_all(gs)
    }

    fn compile_all(&self, gs: GeneratedStubs) -> Result<CompiledProc, PipelineError> {
        let client_encode = stubgen::specialize_stub(&gs, StubKind::ClientEncode, self.chunk)?;
        let client_decode = stubgen::specialize_stub(&gs, StubKind::ClientDecode, self.chunk)?;
        let server_decode = stubgen::specialize_stub(&gs, StubKind::ServerDecode, self.chunk)?;
        let server_encode = stubgen::specialize_stub(&gs, StubKind::ServerEncode, self.chunk)?;
        Ok(CompiledProc {
            target: gs.target,
            client_encode,
            client_decode,
            server_decode,
            server_encode,
            arg_shape: gs.arg_shape.clone(),
            res_shape: gs.res_shape.clone(),
            generated: gs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDL: &str = r#"
        const MAXARR = 2000;
        struct int_arr { int arr<MAXARR>; };
        program ARRAYPROG {
            version ARRAYVERS { int_arr ECHO(int_arr) = 1; } = 1;
        } = 0x20000101;
    "#;

    #[test]
    fn builds_all_four_stubs_from_idl() {
        let cp = ProcPipeline::new(100).build_from_idl(IDL, None, 1).unwrap();
        assert_eq!(cp.target, (0x2000_0101, 1, 1));
        assert_eq!(cp.client_encode.wire_len, 40 + 4 + 400);
        assert_eq!(cp.client_decode.wire_len, 24 + 4 + 400);
        assert!(cp.client_encode.program.len() > 100);
    }

    #[test]
    fn chunked_pipeline_shrinks_stub() {
        let full = ProcPipeline::new(1000)
            .build_from_idl(IDL, None, 1)
            .unwrap();
        let chunked = ProcPipeline::new(1000)
            .with_chunk(250)
            .build_from_idl(IDL, None, 1)
            .unwrap();
        assert!(chunked.client_encode.program.len() < full.client_encode.program.len() / 3);
    }

    #[test]
    fn missing_procedure_is_reported() {
        let err = ProcPipeline::new(10)
            .build_from_idl(IDL, None, 99)
            .unwrap_err();
        assert!(matches!(
            err,
            PipelineError::NoSuchProc { proc_num: 99, .. }
        ));
    }

    #[test]
    fn unsupported_shape_is_reported() {
        let idl = r#"
            struct s { string x<8>; };
            program P { version V { s F(s) = 1; } = 1; } = 7;
        "#;
        let err = ProcPipeline::new(10)
            .build_from_idl(idl, None, 1)
            .unwrap_err();
        assert!(matches!(err, PipelineError::UnsupportedShape));
    }

    #[test]
    fn parse_error_is_reported() {
        let err = ProcPipeline::new(10)
            .build_from_idl("struct {", None, 1)
            .unwrap_err();
        assert!(matches!(err, PipelineError::Parse(_)));
    }
}
