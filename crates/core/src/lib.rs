//! `specrpc` — the end-to-end facade of the reproduction.
//!
//! Everything the paper's experiment does, behind one API:
//!
//! 1. parse an RPC interface definition (`specrpc-rpcgen`),
//! 2. generate the generic marshaling stubs in the Sun micro-layer style,
//! 3. run the Tempo pipeline (`specrpc-tempo`): binding-time division,
//!    specialization against the statically known call context, residual
//!    clean-up, compilation to flat stub programs,
//! 4. wire the result into the RPC runtime (`specrpc-rpc`) over the
//!    simulated network (`specrpc-netsim`), with automatic fallback to the
//!    generic path when a dynamic guard fails (§6.2 of the paper).
//!
//! # The facade
//!
//! Three pieces cover deployment:
//!
//! - [`SpecClient`] — a specialized client over any
//!   [`Transport`](specrpc_rpc::Transport) (retransmitting UDP or
//!   record-marked TCP), built fluently:
//!   `SpecClient::builder(transport).proc(spec).chunk(250).build()`.
//! - [`SpecService`] — a server hosting *multiple* procedures, each
//!   installed with a compiled fast path and a generic guard fallback,
//!   dispatched by procedure number.
//! - [`StubCache`] — memoizes Tempo output per
//!   `(program, version, procedure,` [`ShapeKey`]`)`, so one
//!   specialization context compiles once no matter how many clients and
//!   services use it.
//!
//! # Quickstart
//!
//! A doubling service and a specialized client, end to end:
//!
//! ```
//! use specrpc::{ProcSpec, SpecClient, SpecService, StubCache};
//! use specrpc_netsim::net::{Network, NetworkConfig};
//! use specrpc_rpc::ClntUdp;
//! use specrpc_tempo::compile::StubArgs;
//! use std::sync::Arc;
//!
//! const IDL: &str = r#"
//!     program DBLPROG {
//!         version DBLVERS { int DOUBLE(int) = 1; } = 1;
//!     } = 0x20000777;
//! "#;
//!
//! // One Tempo run, shared by server and client through the cache.
//! let cache = Arc::new(StubCache::new());
//! let spec = ProcSpec::new(IDL, 1);
//! let proc_ = spec.compile(None, Some(&cache)).unwrap();
//!
//! let net = Network::new(NetworkConfig::lan(), 1);
//! SpecService::new()
//!     .proc(proc_.clone(), |args: &StubArgs| {
//!         let v = *args.scalars.last().unwrap();
//!         StubArgs::new(vec![v * 2], vec![])
//!     })
//!     .serve_udp(&net, 900);
//!
//! let transport = ClntUdp::create(&net, 5001, 900, 0x2000_0777, 1);
//! let mut client = SpecClient::builder(transport)
//!     .proc(ProcSpec::new(IDL, 1))
//!     .cache(cache.clone())
//!     .build()
//!     .unwrap();
//!
//! let (out, path) = client.call(&client.args(vec![21], vec![])).unwrap();
//! assert_eq!(*out.scalars.last().unwrap(), 42);
//! assert_eq!(path, specrpc::PathUsed::Fast);
//! // The client's stubs came from the cache: one miss (the compile),
//! // one hit (the client reusing it).
//! assert_eq!(cache.stats().misses, 1);
//! assert_eq!(cache.stats().hits, 1);
//! ```
//!
//! # Threading model
//!
//! The entire serving stack is `Send + Sync` and shares through `Arc`:
//!
//! - [`Network`](specrpc_netsim::Network) keeps all simulator state —
//!   including the virtual clock — behind one lock, so any number of
//!   threads may drive it; with a single driving thread the trace is
//!   fully deterministic (seeded faults, tie-broken event order), while
//!   multiple driving threads stay data-race-free but interleave
//!   scheduling-dependently (see `specrpc_netsim::net` for the precise
//!   guarantee).
//! - [`SvcRegistry`](specrpc_rpc::SvcRegistry) stores handlers as
//!   `Arc<dyn Fn … + Send + Sync>` behind `RwLock`ed maps and dispatches
//!   through `&self` with no lock held during the handler run, so
//!   independent requests dispatch concurrently.
//! - [`StubCache`] is `Arc`/`Mutex`-based: equal contexts compile exactly
//!   once no matter how many threads race on the lookup.
//! - [`SpecService::serve_threaded`] puts a worker pool in front of one
//!   shared registry — per-datagram round-robin for UDP, per-connection
//!   pinning for TCP — and surfaces per-worker dispatch counts through
//!   [`Summary::with_threads`].
//!
//! A threaded deployment end to end:
//!
//! ```
//! use specrpc::{ProcSpec, SpecClient, SpecService, StubCache, Summary};
//! use specrpc_netsim::net::{Network, NetworkConfig};
//! use specrpc_rpc::ClntUdp;
//! use specrpc_tempo::compile::StubArgs;
//! use std::sync::Arc;
//!
//! const IDL: &str = r#"
//!     program NEGPROG {
//!         version NEGVERS { int NEG(int) = 1; } = 1;
//!     } = 0x20000778;
//! "#;
//!
//! let cache = Arc::new(StubCache::new());
//! let proc_ = ProcSpec::new(IDL, 1).compile(None, Some(&cache)).unwrap();
//!
//! let net = Network::new(NetworkConfig::lan(), 1);
//! // Four dispatch workers share one registry (and the one cache-held
//! // stub set); each datagram is processed on a worker thread.
//! let served = SpecService::new()
//!     .proc(proc_.clone(), |args: &StubArgs| {
//!         StubArgs::new(vec![-args.scalars.last().unwrap()], vec![])
//!     })
//!     .serve_threaded(&net, 901, 4);
//!
//! let transport = ClntUdp::create(&net, 5002, 901, 0x2000_0778, 1);
//! let mut client = SpecClient::builder(transport)
//!     .compiled(proc_)
//!     .build()
//!     .unwrap();
//! for i in 0..8 {
//!     let (out, _) = client.call(&client.args(vec![i], vec![])).unwrap();
//!     assert_eq!(*out.scalars.last().unwrap(), -i);
//! }
//!
//! // Per-worker dispatch counts flow into the Summary report.
//! let per_thread = served.per_thread_dispatches();
//! assert_eq!(per_thread.iter().sum::<u64>(), 8);
//! let report = Summary::default()
//!     .with_cache(cache.stats())
//!     .with_threads(per_thread)
//!     .render();
//! assert!(report.contains("threaded dispatch"));
//! ```
//!
//! # The wire path
//!
//! Marshaling runs on one of two lanes, pinned byte-identical by the
//! equivalence tests:
//!
//! - the **generic counted lane** — the 1984 interpretive structure kept
//!   on purpose: every primitive dispatches on the stream's `x_op`
//!   through `&mut dyn XdrStream`, every 4-byte item pays an `x_handy`
//!   overflow check, every layer propagates status. This is the measured
//!   baseline and the §6.2 guard-fallback path.
//! - the **zero-copy lane** — what specialization leaves behind: compiled
//!   stubs run a fused plan (contiguous element runs execute as single
//!   bulk block copies, no per-element dispatch), the client emits the
//!   header and arguments in one pass into a
//!   [`WireBuf`](specrpc_xdr::WireBuf) preallocated once at the stub's
//!   exact wire length and rewound per call, transports borrow the
//!   request (retransmissions rewind and re-send the same image instead
//!   of cloning it), and every buffer cycles through a shared
//!   [`BufPool`](specrpc_rpc::BufPool). In steady state a specialized
//!   UDP round trip performs **zero wire-path heap allocations**;
//!   `OpCounts::heap_allocs` counts them and `Summary::with_wire`
//!   reports bytes-copied and allocs-per-call.
//!
//! On the checked-in baselines this lane took `marshal/specialized/2000`
//! from 3346.7 ns to 612.9 ns (−81.7%) and `unroll/full/2000` from
//! 3018.6 ns to 465.4 ns (−84.6%); see `BENCH_marshal.json` /
//! `BENCH_unroll.json`.
//!
//! The allocation-free loop, end to end:
//!
//! ```
//! use specrpc::echo::{workload, ECHO_IDL, ECHO_PROC, ECHO_PROG, ECHO_VERS};
//! use specrpc::{PathUsed, ProcPipeline, SpecClient, SpecService};
//! use specrpc_netsim::net::{Network, NetworkConfig};
//! use specrpc_rpc::ClntUdp;
//! use specrpc_tempo::compile::StubArgs;
//! use std::sync::Arc;
//!
//! let n = 64;
//! let proc_ = Arc::new(
//!     ProcPipeline::new(n).build_from_idl(ECHO_IDL, None, ECHO_PROC).unwrap(),
//! );
//! let net = Network::new(NetworkConfig::lan(), 5);
//! let reg = SpecService::new()
//!     .proc(proc_.clone(), |args: &StubArgs| {
//!         StubArgs::new(vec![], vec![args.arrays[0].clone()])
//!     })
//!     .into_registry();
//! // A small duplicate-request cache keeps the warm-up window short
//! // (entries recycle into the pool only once the cache is full).
//! specrpc_rpc::svc_udp::serve_udp_with_cache(&net, 902, reg.clone(), None, 4);
//!
//! // The client shares the registry's wire-buffer pool: reply buffers it
//! // recycles come back as the server's next reply images.
//! let transport =
//!     ClntUdp::create_pooled(&net, 5003, 902, ECHO_PROG, ECHO_VERS, reg.pool().clone());
//! let mut client = SpecClient::from_parts(transport, proc_);
//!
//! let data = workload(n);
//! let args = client.args(vec![], vec![data.clone()]);
//! let mut out = StubArgs::default(); // reused result slots
//! for _ in 0..8 {
//!     let path = client.call_into(&args, &mut out).unwrap();
//!     assert_eq!(path, PathUsed::Fast);
//!     assert_eq!(out.arrays[0], data);
//! }
//! // Warm-up done: from here the wire path allocates nothing.
//! let warm = client.counts.heap_allocs;
//! for _ in 0..5 {
//!     client.call_into(&args, &mut out).unwrap();
//! }
//! assert_eq!(client.counts.heap_allocs, warm);
//! ```
//!
//! # Scaling the server
//!
//! Three serving front ends share one dispatch stack (registry, dup
//! cache, buffer pool, zero-copy encode):
//!
//! - [`SpecService::serve_udp`] — a blocking per-address handler slot;
//!   the measured baseline. In-flight deliveries to one address
//!   serialize on the slot lock.
//! - [`SpecService::serve_threaded`] — a worker pool behind the slot;
//!   dispatch runs on worker OS threads but the delivering thread still
//!   blocks per datagram on the reply hand-off.
//! - [`SpecService::serve_event`] — the **event-driven core**:
//!   deliveries become readiness events and reactor workers drain them
//!   round-robin, so any number of requests are in flight at once and
//!   nothing blocks the thread driving the network. This is what makes
//!   batching pay: [`SpecClient::call_batch`] keeps N pipelined
//!   requests outstanding (one reused `WireBuf` scratch per slot,
//!   xid-matched completion, results in submission order), so the fixed
//!   per-call round-trip overhead is paid once per batch — the same way
//!   the compiled stubs amortize per-element marshaling overhead.
//!
//! With one reactor worker and one driving thread, traces are byte- and
//! virtual-time-identical to `serve_udp`; per-worker throughput flows
//! into the report via [`Summary::with_events`].
//!
//! A batched deployment end to end:
//!
//! ```
//! use specrpc::{ProcSpec, SpecClient, SpecService, Summary};
//! use specrpc_netsim::net::{Network, NetworkConfig};
//! use specrpc_rpc::ClntUdp;
//! use specrpc_tempo::compile::StubArgs;
//!
//! const IDL: &str = r#"
//!     program SQPROG {
//!         version SQVERS { int SQUARE(int) = 1; } = 1;
//! } = 0x20000779;
//! "#;
//!
//! let proc_ = ProcSpec::new(IDL, 1).compile(None, None).unwrap();
//!
//! let net = Network::new(NetworkConfig::lan(), 1);
//! // Two reactor workers drain the readiness queue; requests to this
//! // one address process in parallel instead of serializing.
//! let served = SpecService::new()
//!     .proc(proc_.clone(), |args: &StubArgs| {
//!         let v = *args.scalars.last().unwrap();
//!         StubArgs::new(vec![v * v], vec![])
//!     })
//!     .serve_event(&net, 903, 2);
//!
//! let transport = ClntUdp::create(&net, 5004, 903, 0x2000_0779, 1);
//! let mut client = SpecClient::builder(transport)
//!     .compiled(proc_)
//!     .build()
//!     .unwrap();
//!
//! // Eight calls in flight at once; replies return in submission order.
//! let batch: Vec<StubArgs> =
//!     (1..=8).map(|i| client.args(vec![i], vec![])).collect();
//! let results = client.call_batch(&batch).unwrap();
//! for (i, (out, _path)) in results.iter().enumerate() {
//!     let x = (i + 1) as i32;
//!     assert_eq!(*out.scalars.last().unwrap(), x * x);
//! }
//!
//! // Reactor throughput flows into the report.
//! assert_eq!(served.total_events(), 8);
//! let report = Summary::default()
//!     .with_events(served.per_worker_events())
//!     .render();
//! assert!(report.contains("event loop"));
//! ```
//!
//! ## Sharding the reactor
//!
//! Past one reactor, [`SpecService::serve_sharded`] partitions the
//! *(prog, vers, addr)* space across N reactors: each shard owns a
//! slice of the serving sockets together with that slice's
//! duplicate-request caches and buffer pool, and a shard whose own
//! sockets run dry steals one datagram at a time from its peers. With
//! `workers_per_shard = 0` the map runs in **deterministic
//! single-driver mode** — no threads, every delivery executed inline by
//! whichever thread drives the network — and replies are byte- and
//! virtual-time-identical to a 1-shard (or `serve_udp`) deployment:
//! shard assignment moves ownership, never delivery order. Per-shard
//! throughput flows into the report via [`Summary::with_shards`];
//! reply-latency quantiles via [`Summary::with_latency`].
//!
//! ```
//! use specrpc::echo::{build_echo_proc, echo_service, ECHO_PROG, ECHO_VERS};
//! use specrpc::{SpecClient, Summary};
//! use specrpc_netsim::net::{Network, NetworkConfig};
//! use specrpc_rpc::ClntUdp;
//! use std::sync::Arc;
//!
//! let net = Network::new(NetworkConfig::lan(), 5);
//! let proc_ = Arc::new(build_echo_proc(8, None).unwrap());
//! // Four sockets partitioned across two shards, single-driver mode.
//! let ports = [910, 911, 912, 913];
//! let served = echo_service(proc_.clone()).serve_sharded(&net, &ports, 2, 0);
//!
//! for (i, &port) in ports.iter().enumerate() {
//!     let transport = ClntUdp::create(&net, 5200 + i as u32, port, ECHO_PROG, ECHO_VERS);
//!     let mut client = SpecClient::from_parts(transport, proc_.clone());
//!     let args = client.args(vec![], vec![vec![1, 2, 3, 4, 5, 6, 7, 8]]);
//!     let (out, _path) = client.call(&args).unwrap();
//!     assert_eq!(out.arrays[0], vec![1, 2, 3, 4, 5, 6, 7, 8]);
//! }
//!
//! assert_eq!(served.total_events(), 4);
//! let report = Summary::default()
//!     .with_shards(served.per_shard_events())
//!     .render();
//! assert!(report.contains("shard map"));
//! ```
//!
//! On top of the same readiness surface, the `specrpc-async` crate
//! wraps the nonblocking client lane ([`SpecClient::call_begin`] /
//! `call_poll` / `call_finish`) and the shard map's
//! [`specrpc_rpc::ShardedEventLoop::poll_once`] sweep in ordinary
//! `Future`s, with a tiny `block_on` executor that interleaves polling
//! with simulator steps — async-capable entry points without touching
//! the core wire path. The open-loop **million-client scenario** (one
//! pre-encoded request per endpoint, zipf-skewed shape mix, latency
//! quantiles and per-shard throughput through [`Summary`]) lives in
//! [`scenario`]; run it via `cargo run --release --example
//! million_clients`.
//!
//! # Adaptive specialization
//!
//! The paper specializes ahead of time; at an open-ended shape
//! population a cold context would pay its Tempo run **inline on the
//! calling path**. The [`adaptive`] subsystem turns the static model
//! into tiered execution: [`AdaptiveClient`] /
//! [`SpecService::proc_adaptive`] serve cold calls through the generic
//! lane (**Tier-0** — byte-identical wire output, no stall), a
//! configurable promotion policy ([`AdaptiveConfig::promote_after`])
//! queues the context to the background [`Specializer`] compile pool,
//! and the finished stub set is **atomically published** into the shared
//! [`StubCache`] so in-flight callers hot-swap to **Tier-1** mid-stream
//! without a reply byte changing. Eviction is cost-aware — weight =
//! measured compile cost × recency-decayed hit rate
//! ([`EvictionPolicy::CostAware`]) — and
//! [`StubCache::compile_ahead_idl`] pre-seeds a cache from IDL at
//! registration. Counters flow into the report via
//! [`Summary::with_adaptive`].
//!
//! A cold Tier-0 call, then a hot-swapped specialized call:
//!
//! ```
//! use specrpc::{
//!     AdaptiveClient, AdaptiveConfig, AdaptiveProc, AdaptiveRuntime, ProcPipeline,
//!     PublishMode, SpecService, TierUsed,
//! };
//! use specrpc_netsim::net::{Network, NetworkConfig};
//! use specrpc_rpc::ClntUdp;
//! use specrpc_tempo::compile::StubArgs;
//!
//! const IDL: &str = r#"
//!     program INCPROG {
//!         version INCVERS { int INC(int) = 1; } = 1;
//!     } = 0x2000077a;
//! "#;
//!
//! // Deterministic publication: compiles go live at drain() points.
//! let runtime = AdaptiveRuntime::new(AdaptiveConfig::default().publish(PublishMode::OnDrain));
//! let proc_ = AdaptiveProc::resolve(ProcPipeline::new(0), IDL, None, 1).unwrap();
//!
//! let net = Network::new(NetworkConfig::lan(), 1);
//! SpecService::new()
//!     .proc_adaptive(runtime.clone(), proc_.clone(), |args: &StubArgs| {
//!         StubArgs::new(vec![args.scalars.last().unwrap() + 1], vec![])
//!     })
//!     .serve_udp(&net, 904);
//!
//! let transport = ClntUdp::create(&net, 5005, 904, 0x2000_077a, 1);
//! let mut client = AdaptiveClient::new(transport, runtime.clone(), proc_);
//!
//! // Cold call: Tier-0 generic marshaling — no compile on the calling
//! // path, the answer comes back immediately.
//! let (out, tier) = client.call(&client.args(vec![41], vec![])).unwrap();
//! assert_eq!(*out.scalars.last().unwrap(), 42);
//! assert_eq!(tier, TierUsed::Generic);
//!
//! // The background compile finished; flip it live.
//! runtime.drain();
//!
//! // Hot-swapped: the same client now marshals with compiled stubs —
//! // same answer, same reply bytes, counted as exactly one hot swap.
//! let (out, tier) = client.call(&client.args(vec![41], vec![])).unwrap();
//! assert_eq!(*out.scalars.last().unwrap(), 42);
//! assert_eq!(tier, TierUsed::Specialized);
//! assert_eq!(runtime.stats().hot_swaps, 1);
//! ```
//!
//! The [`echo`] module packages the paper's benchmark workload (a remote
//! procedure exchanging integer arrays, §5 "The test program"); [`client`]
//! and [`service`] hold the transport-agnostic facade; [`cache`] the
//! shape-keyed specialization cache; [`adaptive`] + [`specializer`] the
//! tiered runtime and its background compile pool; [`pipeline`] the
//! IDL-to-stub driver; [`summary`] maps specializer statistics onto the
//! paper's §3 categories (plus the log-bucket latency histogram);
//! [`scenario`] the open-loop scale scenarios.

pub mod adaptive;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod congestion;
pub mod echo;
pub mod generic;
pub mod pipeline;
pub mod scenario;
pub mod service;
pub mod specializer;
pub mod summary;

pub use adaptive::{
    AdaptiveClient, AdaptiveConfig, AdaptiveProc, AdaptiveRuntime, AdaptiveStats, PublishMode,
    Tier, TierUsed,
};
pub use cache::{
    CacheStats, CompileClock, EvictionPolicy, ShapeKey, StubCache, COST_CLASSES,
    DEFAULT_STUB_CACHE_ENTRIES,
};
pub use chaos::{run_chaos, run_chaos_matrix, ChaosConfig, ChaosReport};
pub use client::{PathUsed, ProcSpec, SpecClient, SpecClientBuilder};
pub use congestion::{run_congestion, run_congestion_matrix, CongestionConfig, CongestionReport};
pub use pipeline::{CompiledProc, PipelineError, ProcPipeline, UNROLL_CANDIDATES};
pub use scenario::{
    deploy_nfs_service, run_adaptive, run_nfs, run_scale, run_scale_single_shard,
    AdaptiveScenarioConfig, AdaptiveScenarioReport, NfsConfig, NfsReport, ScaleConfig, ScaleReport,
};
pub use service::{EventService, ShardedService, SpecHandler, SpecService, ThreadedService};
pub use specializer::{CompileJob, Specializer, SpecializerStats};
pub use summary::{ChaosSummary, LatencyHistogram, Summary, WireStats};
