//! `specrpc` — the end-to-end facade of the reproduction.
//!
//! Everything the paper's experiment does, behind one API:
//!
//! 1. parse an RPC interface definition (`specrpc-rpcgen`),
//! 2. generate the generic marshaling stubs in the Sun micro-layer style,
//! 3. run the Tempo pipeline (`specrpc-tempo`): binding-time division,
//!    specialization against the statically known call context, residual
//!    clean-up, compilation to flat stub programs,
//! 4. wire the result into the RPC runtime (`specrpc-rpc`) over the
//!    simulated network (`specrpc-netsim`), with automatic fallback to the
//!    generic path when a dynamic guard fails (§6.2 of the paper).
//!
//! The [`echo`] module packages the paper's benchmark workload (a remote
//! procedure exchanging integer arrays, §5 "The test program"); [`fast`]
//! has the transport-facing specialized client/server; [`pipeline`] the
//! IDL-to-stub driver; [`summary`] maps specializer statistics onto the
//! paper's §3 categories.

pub mod echo;
pub mod fast;
pub mod pipeline;
pub mod summary;

pub use fast::{FastClient, FastServer, PathUsed};
pub use pipeline::{CompiledProc, PipelineError, ProcPipeline};
pub use summary::Summary;
