//! Generic-path shape marshaling shared by the client and server guard
//! fallbacks (§6.2 `else` branch): the layered micro-routines driven by a
//! [`MsgShape`], reading/writing the same [`StubArgs`] slot convention the
//! compiled stubs use.

use specrpc_rpcgen::stubgen::{FieldShape, MsgShape};
use specrpc_tempo::compile::StubArgs;
use specrpc_xdr::{XdrResult, XdrStream};

/// The `(scalar, array)` slot counts a shape's fields occupy in
/// [`StubArgs`] — the same accounting the compiled stubs' layout uses
/// (a var-array's length slot is a binding, not a scalar slot), so the
/// pure-generic tier can size its slots without compiling anything.
pub fn shape_counts(shape: &MsgShape) -> (usize, usize) {
    let mut scalars = 0;
    let mut arrays = 0;
    for f in &shape.fields {
        match f {
            FieldShape::Scalar { .. } => scalars += 1,
            FieldShape::VarIntArray { .. } | FieldShape::FixedIntArray { .. } => arrays += 1,
        }
    }
    (scalars, arrays)
}

/// Decode a message shape through the generic micro-layers into StubArgs
/// slots (shared by client fallback and server fallback).
pub fn decode_shape_generic(
    xdrs: &mut dyn XdrStream,
    shape: &MsgShape,
    scalar_base: u16,
    out: &mut StubArgs,
) -> XdrResult {
    let mut s = scalar_base as usize;
    let mut a = 0usize;
    for f in &shape.fields {
        match f {
            FieldShape::Scalar { .. } => {
                specrpc_xdr::primitives::xdr_int(xdrs, &mut out.scalars[s])?;
                s += 1;
            }
            FieldShape::VarIntArray { max, .. } => {
                specrpc_xdr::composite::xdr_array(
                    xdrs,
                    &mut out.arrays[a],
                    (*max).min(u32::MAX as usize),
                    specrpc_xdr::primitives::xdr_int,
                )?;
                a += 1;
            }
            FieldShape::FixedIntArray { len, .. } => {
                out.arrays[a].clear();
                out.arrays[a].resize(*len, 0);
                let arr = &mut out.arrays[a];
                specrpc_xdr::composite::xdr_vector(
                    xdrs,
                    arr.as_mut_slice(),
                    specrpc_xdr::primitives::xdr_int,
                )?;
                a += 1;
            }
        }
    }
    Ok(())
}

/// Encode a message shape through the generic micro-layers from StubArgs
/// slots.
pub fn encode_shape_generic(
    xdrs: &mut dyn XdrStream,
    shape: &MsgShape,
    scalar_base: u16,
    args: &mut StubArgs,
) -> XdrResult {
    let mut s = scalar_base as usize;
    let mut a = 0usize;
    for f in &shape.fields {
        match f {
            FieldShape::Scalar { .. } => {
                specrpc_xdr::primitives::xdr_int(xdrs, &mut args.scalars[s])?;
                s += 1;
            }
            FieldShape::VarIntArray { max, .. } => {
                specrpc_xdr::composite::xdr_array(
                    xdrs,
                    &mut args.arrays[a],
                    (*max).min(u32::MAX as usize),
                    specrpc_xdr::primitives::xdr_int,
                )?;
                a += 1;
            }
            FieldShape::FixedIntArray { .. } => {
                specrpc_xdr::composite::xdr_vector(
                    xdrs,
                    args.arrays[a].as_mut_slice(),
                    specrpc_xdr::primitives::xdr_int,
                )?;
                a += 1;
            }
        }
    }
    Ok(())
}
