//! Availability study under injected faults: a replicated echo
//! deployment is driven through a [`ChaosSchedule`] that crashes the
//! primary mid-run, and the client population either rides it out with
//! the resilience layer (per-call deadlines, retry budgets, circuit
//! breakers, replica failover) or takes the outage on the chin like a
//! classic `clntudp_call` client.
//!
//! The measured quantities are the ones the paper's reliability story
//! turns on:
//!
//! - **availability** — the fraction of calls completing within the
//!   scenario deadline, in basis points so reports stay `Eq`;
//! - **recovery time** — virtual time from the crash instant to the
//!   first *subsequently issued* call that completed;
//! - **exactly-once erosion** — handler executions beyond one per
//!   completed call: a restarted server's duplicate-request cache comes
//!   back empty ([`serve_udp_restartable`]), so a retransmission of an
//!   already-executed request re-executes it, and a failover re-send
//!   executes on a second replica.
//!
//! Everything is seeded and single-driver: a fixed [`ChaosConfig`]
//! produces a byte-identical [`ChaosReport::render`] every run — the
//! fault schedule is part of the experiment, not noise.
//!
//! ```
//! use specrpc::{run_chaos_matrix, ChaosConfig};
//!
//! let reports = run_chaos_matrix(&ChaosConfig::smoke()).unwrap();
//! let (with, without) = (&reports[0], &reports[1]);
//! // The resilience layer rides out the mid-run primary crash…
//! assert!(with.availability_bp() >= 9_900);
//! // …while the classic client population measurably degrades.
//! assert!(without.availability_bp() < with.availability_bp());
//! ```
//!
//! [`serve_udp_restartable`]: specrpc_rpc::svc_udp::serve_udp_restartable

use crate::echo::{build_echo_proc, ECHO_PROG, ECHO_VERS, MAX_ARR};
use crate::pipeline::PipelineError;
use crate::service::SpecService;
use crate::summary::{ChaosSummary, LatencyHistogram, Summary};
use specrpc_netsim::net::{Addr, Network, NetworkConfig};
use specrpc_netsim::{ChaosSchedule, ChaosStats, FaultConfig, SimTime};
use specrpc_rpc::svc_udp::{serve_udp, serve_udp_restartable};
use specrpc_rpc::{CircuitBreaker, ClntUdp};
use specrpc_tempo::compile::StubArgs;
use specrpc_xdr::composite::xdr_array;
use specrpc_xdr::primitives::xdr_int;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Primary server port of the chaos scenario.
pub const CHAOS_PRIMARY: Addr = 49_000;
/// First backup replica port (`CHAOS_BACKUP_BASE + i`).
pub const CHAOS_BACKUP_BASE: Addr = 49_001;
/// First client endpoint address.
pub const CHAOS_CLIENT_BASE: Addr = 72_000;

/// Configuration of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Client endpoints, driven round-robin (closed loop: each issues
    /// its next call when its previous one settles).
    pub clients: usize,
    /// Calls per client over the run.
    pub calls_per_client: usize,
    /// Echo array size (ints) — the datagram payload knob.
    pub payload: usize,
    /// Seed for the network fault stream.
    pub seed: u64,
    /// Backup replicas deployed beside the primary.
    pub backups: usize,
    /// Whether clients use the resilience layer (replica failover,
    /// retry budget, circuit breakers). `false` = classic client:
    /// same timeouts, primary only.
    pub failover: bool,
    /// Availability bound: a call completing later than this counts
    /// against availability even though it completed.
    pub deadline: SimTime,
    /// Per-try timeout before retransmission.
    pub retry_timeout: SimTime,
    /// Total per-call timeout (`cu_total`) — for a failover client,
    /// per replica attempt.
    pub call_timeout: SimTime,
    /// Retransmissions allowed per replica attempt before the client
    /// gives up and moves on (failover clients only).
    pub retry_budget: u32,
    /// Consecutive failures that trip a replica's circuit breaker.
    pub breaker_threshold: u32,
    /// Breaker cool-down before a half-open probe is admitted.
    pub breaker_cooldown: SimTime,
    /// Virtual instant the primary crashes.
    pub crash_at: SimTime,
    /// How long the primary stays down before its restart (which
    /// resurrects it with an **empty** duplicate-request cache).
    pub crash_downtime: SimTime,
    /// Fault model applied to every datagram on top of the schedule.
    pub faults: FaultConfig,
}

impl ChaosConfig {
    /// A mid-run primary crash with one backup: the outage spans
    /// several sequential calls, so a classic client burns a full
    /// `call_timeout` per affected call while a failover client gives
    /// up after its retry budget and completes on the backup within
    /// the deadline.
    pub fn smoke() -> ChaosConfig {
        ChaosConfig {
            clients: 8,
            calls_per_client: 24,
            payload: 16,
            seed: 7,
            backups: 1,
            failover: true,
            deadline: SimTime::from_millis(8),
            retry_timeout: SimTime::from_millis(2),
            call_timeout: SimTime::from_millis(8),
            retry_budget: 2,
            breaker_threshold: 1,
            breaker_cooldown: SimTime::from_millis(20),
            crash_at: SimTime::from_millis(4),
            crash_downtime: SimTime::from_millis(30),
            faults: FaultConfig::NONE,
        }
    }

    /// This config with the resilience layer on or off.
    pub fn with_failover(mut self, failover: bool) -> ChaosConfig {
        self.failover = failover;
        self
    }

    /// This config under the given fault model.
    pub fn with_faults(mut self, faults: FaultConfig) -> ChaosConfig {
        self.faults = faults;
        self
    }

    /// The fault schedule of this config: crash the primary at
    /// `crash_at`, restart it `crash_downtime` later.
    pub fn schedule(&self) -> ChaosSchedule {
        ChaosSchedule::new().crash_window(CHAOS_PRIMARY, self.crash_at, self.crash_downtime)
    }
}

/// Outcome of one [`run_chaos`] execution.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Whether the clients ran the resilience layer.
    pub failover: bool,
    /// Calls issued.
    pub calls: u64,
    /// Calls that completed (reply decoded), deadline or not.
    pub completed: u64,
    /// Completed calls that made the scenario deadline.
    pub within_deadline: u64,
    /// Calls that errored (timed out, gave up, or breaker-refused).
    pub failed: u64,
    /// Handler executions across every replica incarnation.
    pub handler_runs: u64,
    /// Handler executions beyond one per completed call — the
    /// exactly-once → at-least-once erosion.
    pub extra_executions: u64,
    /// Client retargetings to a backup replica.
    pub failovers: u64,
    /// Circuit-breaker open transitions across all clients.
    pub breaker_trips: u64,
    /// Retransmissions across all clients.
    pub retransmits: u64,
    /// Virtual time from the crash to the first completed call issued
    /// at or after it.
    pub recovery: Option<SimTime>,
    /// Network-level chaos accounting (crashes, restarts, datagrams
    /// dropped at down endpoints, total downtime).
    pub chaos: ChaosStats,
    /// Virtual time when the run (schedule included) finished.
    pub elapsed: SimTime,
    /// Completion latency distribution (issue → reply decoded).
    pub latency: LatencyHistogram,
}

impl ChaosReport {
    /// `within_deadline / calls` in basis points (9_967 = 99.67%).
    pub fn availability_bp(&self) -> u32 {
        (self.within_deadline * 10_000 / self.calls.max(1)) as u32
    }

    /// Short label of the client mode (table/bench row key).
    pub fn mode_label(&self) -> &'static str {
        if self.failover {
            "failover"
        } else {
            "no-failover"
        }
    }

    /// The run as a [`Summary`] (latency + chaos-availability lines).
    pub fn summary(&self) -> Summary {
        Summary::default()
            .with_latency(self.latency.clone())
            .with_chaos(ChaosSummary {
                calls: self.calls,
                within_deadline: self.within_deadline,
                failed: self.failed,
                availability_bp: self.availability_bp(),
                recovery: self.recovery,
                extra_executions: self.extra_executions,
                failovers: self.failovers,
                breaker_trips: self.breaker_trips,
                downtime: self.chaos.downtime,
            })
    }

    /// Human-readable report; byte-identical across runs of one config.
    pub fn render(&self) -> String {
        let mut out = self.summary().render();
        out.push_str(&format!(
            "\n\u{20} chaos mode:                     {}",
            self.mode_label(),
        ));
        out.push_str(&format!(
            "\n\u{20} chaos schedule:                 {} crash(es), {} restart(s), {} datagram(s) dropped at down hosts",
            self.chaos.crashes, self.chaos.restarts, self.chaos.drops_down,
        ));
        out.push_str(&format!(
            "\n\u{20} client effort:                  {} retransmit(s), {} handler run(s) for {} completed call(s) over {} virtual",
            self.retransmits, self.handler_runs, self.completed, self.elapsed,
        ));
        out
    }
}

/// Execute one chaos run: deploy the primary restartably plus its
/// backups (one shared registry, so the handler-run counter sees every
/// incarnation), arm the fault schedule, drive every client through
/// its closed-loop call sequence, then play the schedule out so the
/// restart and downtime accounting land even if the calls finished
/// early.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, PipelineError> {
    assert!(cfg.clients > 0 && cfg.calls_per_client > 0, "non-empty run");
    assert!(cfg.payload <= MAX_ARR, "payload within IDL bound");
    let net = Network::new(NetworkConfig::lan().with_faults(cfg.faults), cfg.seed);

    // One registry (and one run counter) shared by the primary and
    // every backup: `handler_runs` counts real executions wherever they
    // happen; duplicate-cache hits do not re-execute and do not count.
    let runs = Arc::new(AtomicU64::new(0));
    let counter = runs.clone();
    let proc_ = Arc::new(build_echo_proc(cfg.payload, Some(32))?);
    let registry = SpecService::new()
        .proc(proc_, move |args: &StubArgs| {
            counter.fetch_add(1, Ordering::Relaxed);
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .into_registry();

    serve_udp_restartable(&net, CHAOS_PRIMARY, registry.clone(), None);
    let backups: Vec<Addr> = (0..cfg.backups)
        .map(|b| CHAOS_BACKUP_BASE + b as u32)
        .collect();
    for &b in &backups {
        serve_udp(&net, b, registry.clone(), None);
    }
    net.apply_chaos(&cfg.schedule());

    let mut clients: Vec<ClntUdp> = (0..cfg.clients)
        .map(|i| {
            let mut c = ClntUdp::create(
                &net,
                CHAOS_CLIENT_BASE + i as u32,
                CHAOS_PRIMARY,
                ECHO_PROG,
                ECHO_VERS,
            );
            c.retry_timeout = cfg.retry_timeout;
            c.total_timeout = cfg.call_timeout;
            if cfg.failover {
                c = c
                    .with_replicas(&backups)
                    .with_breaker(CircuitBreaker::new(
                        cfg.breaker_threshold,
                        cfg.breaker_cooldown,
                    ))
                    .with_retry_budget(cfg.retry_budget);
            }
            c
        })
        .collect();

    let mut latency = LatencyHistogram::new();
    let (mut completed, mut within, mut failed) = (0u64, 0u64, 0u64);
    let mut recovery = None;
    for _round in 0..cfg.calls_per_client {
        for client in clients.iter_mut() {
            let issued = net.now();
            let mut data: Vec<i32> = (0..cfg.payload as i32).collect();
            let mut echoed: Vec<i32> = Vec::new();
            let res = client.call(
                1,
                &mut |x| xdr_array(x, &mut data, MAX_ARR, xdr_int),
                &mut |x| xdr_array(x, &mut echoed, MAX_ARR, xdr_int),
            );
            let now = net.now();
            match res {
                Ok(()) => {
                    let lat = now.saturating_sub(issued);
                    latency.record(lat);
                    completed += 1;
                    if lat <= cfg.deadline {
                        within += 1;
                    }
                    if recovery.is_none() && issued >= cfg.crash_at {
                        recovery = Some(now.saturating_sub(cfg.crash_at));
                    }
                }
                Err(_) => failed += 1,
            }
        }
    }

    // Let the schedule finish: a fast run must still observe the
    // restart so `ChaosStats::downtime` means the same thing in every
    // mode.
    let end = cfg.crash_at + cfg.crash_downtime + SimTime::from_millis(1);
    if net.now() < end {
        net.run_until(end, || false);
    }

    let calls = (cfg.clients * cfg.calls_per_client) as u64;
    let handler_runs = runs.load(Ordering::Relaxed);
    Ok(ChaosReport {
        failover: cfg.failover,
        calls,
        completed,
        within_deadline: within,
        failed,
        handler_runs,
        extra_executions: handler_runs.saturating_sub(completed),
        failovers: clients.iter().map(|c| c.failovers).sum(),
        breaker_trips: clients.iter().map(|c| c.breaker_trips()).sum(),
        retransmits: clients.iter().map(|c| c.retransmits).sum(),
        recovery,
        chaos: net.chaos_stats(),
        elapsed: net.now(),
        latency,
    })
}

/// Run the availability comparison: the same config with the
/// resilience layer on, then off. Same deployment, same schedule, same
/// seed — only the client strategy differs.
pub fn run_chaos_matrix(cfg: &ChaosConfig) -> Result<Vec<ChaosReport>, PipelineError> {
    [true, false]
        .into_iter()
        .map(|failover| run_chaos(&cfg.clone().with_failover(failover)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_rides_out_the_crash_the_classic_client_eats() {
        let reports = run_chaos_matrix(&ChaosConfig::smoke()).unwrap();
        let (with, without) = (&reports[0], &reports[1]);
        assert!(with.failover && !without.failover);
        assert_eq!(with.completed + with.failed, with.calls);
        assert_eq!(without.completed + without.failed, without.calls);
        assert!(
            with.availability_bp() >= 9_900,
            "failover availability {} bp must stay ≥ 99%",
            with.availability_bp()
        );
        assert!(
            without.availability_bp() < with.availability_bp(),
            "the classic client must measurably degrade: {} vs {} bp",
            without.availability_bp(),
            with.availability_bp()
        );
        assert!(with.failovers > 0, "the crash must have forced failovers");
        assert!(
            with.breaker_trips > 0,
            "give-ups must have fed the breakers"
        );
        assert_eq!(without.failovers, 0, "classic clients cannot fail over");
    }

    #[test]
    fn both_modes_observe_the_full_schedule() {
        for r in run_chaos_matrix(&ChaosConfig::smoke()).unwrap() {
            assert_eq!(r.chaos.crashes, 1, "{:?}", r.chaos);
            assert_eq!(r.chaos.restarts, 1, "{:?}", r.chaos);
            assert!(
                r.chaos.downtime >= ChaosConfig::smoke().crash_downtime,
                "downtime {} must cover the schedule window",
                r.chaos.downtime
            );
            assert!(r.chaos.drops_down > 0, "retries into the outage must drop");
        }
    }

    #[test]
    fn recovery_is_faster_with_failover() {
        let reports = run_chaos_matrix(&ChaosConfig::smoke()).unwrap();
        let with = reports[0].recovery.expect("failover run recovers");
        let without = reports[1].recovery.expect("restart eventually recovers");
        assert!(
            with < without,
            "failover recovery {with} must beat waiting out the restart {without}"
        );
    }

    #[test]
    fn reports_are_byte_identical_across_runs() {
        let cfg = ChaosConfig::smoke().with_faults(FaultConfig::LOSSY);
        let a = run_chaos(&cfg).unwrap();
        let b = run_chaos(&cfg).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.latency, b.latency);
    }
}
