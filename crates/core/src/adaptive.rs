//! Adaptive specialization: tiered execution between the generic
//! marshaling path and the compiled specialized stubs.
//!
//! The paper specializes ahead of time — every context it measures had
//! its Tempo run before the first call. At production scale the shape
//! population is open-ended: a cold `(procedure, ShapeKey)` seen for the
//! first time would pay a full Tempo compile **inline on the calling
//! path** (milliseconds) to save microseconds of marshaling. This module
//! turns the static model into the tiered-compilation shape every JIT
//! uses:
//!
//! * **Tier-0** serves cold calls immediately through the generic
//!   micro-layer path ([`crate::generic`]) — byte-identical wire output,
//!   no compile, no stall.
//! * A **promotion policy** (compile on first sight, or after `K` hits —
//!   [`AdaptiveConfig::promote_after`]) enqueues the context to the
//!   background [`Specializer`] pool, which runs Tempo off the calling
//!   path and atomically publishes the compiled stub set into the shared
//!   [`StubCache`].
//! * The next lookup **hot-swaps** to **Tier-1**: in-flight callers
//!   simply find the filled cache entry — no stall, and no reply byte
//!   changes, because both tiers speak the same wire format.
//!
//! [`AdaptiveRuntime`] is the shared policy object (client and server
//! can share one, or run their own); [`AdaptiveClient`] is the
//! per-connection facade mirroring [`crate::SpecClient`] but choosing
//! its marshaling tier per call.

use crate::cache::{modeled_compile_ns, CacheKey, CompileClock, ShapeKey, StubCache, COST_CLASSES};
use crate::generic::{decode_shape_generic, encode_shape_generic, shape_counts};
use crate::pipeline::{CompiledProc, PipelineError, ProcPipeline};
use crate::specializer::{CompileJob, Specializer};
use specrpc_rpc::error::RpcError;
use specrpc_rpc::msg::{CallHeader, ReplyHeader};
use specrpc_rpc::transport::Transport;
use specrpc_rpcgen::stubgen::{FieldShape, MsgShape};
use specrpc_rpcgen::sunlib::reply_fields;
use specrpc_tempo::compile::{run_decode, run_encode_with_xid, Outcome, StubArgs};
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::{OpCounts, WireBuf, XdrStream};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which tier marshaled a call (the adaptive analog of
/// [`crate::PathUsed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierUsed {
    /// Tier-0: the generic micro-layer path (cold context).
    Generic,
    /// Tier-1: compiled specialized stubs (cache hit, possibly freshly
    /// hot-swapped).
    Specialized,
}

/// A tier decision for one call.
pub enum Tier {
    /// Marshal generically.
    Generic,
    /// Marshal with this compiled stub set.
    Specialized(Arc<CompiledProc>),
}

/// When background compiles become visible to callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PublishMode {
    /// Publish the instant a worker finishes (lowest time-to-Tier-1;
    /// swap timing follows wall-clock thread scheduling).
    #[default]
    Immediate,
    /// Park finished compiles until [`AdaptiveRuntime::drain`] — the
    /// deterministic mode: the simulation drains at fixed call indices,
    /// so hot-swap points reproduce run to run.
    OnDrain,
}

/// Policy knobs for an [`AdaptiveRuntime`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Promote (queue a compile for) a context on its `K`-th Tier-0
    /// lookup. `1` = compile on first sight; `u32::MAX` effectively
    /// never promotes (an always-generic baseline).
    pub promote_after: u32,
    /// Background compile threads.
    pub workers: usize,
    /// Compile **inline on the calling path** instead of in the
    /// background — the pre-adaptive behavior, kept as the baseline the
    /// cold-call benchmark measures against.
    pub inline_compile: bool,
    /// When background compiles become visible.
    pub publish: PublishMode,
    /// Pre-seed the cache from IDL at service registration
    /// ([`crate::SpecService::proc_adaptive`] honors this).
    pub compile_ahead: bool,
    /// Entry capacity of the runtime's own cache (ignored by
    /// [`AdaptiveRuntime::with_cache`]).
    pub cache_entries: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            promote_after: 1,
            workers: 1,
            inline_compile: false,
            publish: PublishMode::Immediate,
            compile_ahead: false,
            cache_entries: crate::cache::DEFAULT_STUB_CACHE_ENTRIES,
        }
    }
}

impl AdaptiveConfig {
    /// Promote after `k` Tier-0 hits (default 1: first sight).
    pub fn promote_after(mut self, k: u32) -> Self {
        self.promote_after = k;
        self
    }

    /// Use `n` background compile threads.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Compile inline on the calling path (the stall the adaptive tiers
    /// exist to remove — for baselines).
    pub fn inline_compile(mut self) -> Self {
        self.inline_compile = true;
        self
    }

    /// Select the publication mode.
    pub fn publish(mut self, mode: PublishMode) -> Self {
        self.publish = mode;
        self
    }

    /// Pre-seed the cache at service registration.
    pub fn compile_ahead(mut self, on: bool) -> Self {
        self.compile_ahead = on;
        self
    }

    /// Entry capacity for the runtime's cache.
    pub fn cache_entries(mut self, n: usize) -> Self {
        self.cache_entries = n;
        self
    }
}

/// A procedure registered with the adaptive runtime: the specialization
/// context plus the resolved target and shapes. Resolution (IDL parse,
/// shape extraction) happens once here — per-call lookups only hash the
/// key.
#[derive(Debug, Clone)]
pub struct AdaptiveProc {
    /// Specialization context.
    pub pipeline: ProcPipeline,
    /// `(program, version, procedure)` numbers.
    pub target: (u32, u32, u32),
    /// Argument shape.
    pub arg: MsgShape,
    /// Result shape.
    pub res: MsgShape,
}

impl AdaptiveProc {
    /// Resolve `proc_num` of the (named or first) program in `idl` under
    /// `pipeline`'s context — no Tempo run.
    pub fn resolve(
        pipeline: ProcPipeline,
        idl: &str,
        program: Option<&str>,
        proc_num: u32,
    ) -> Result<AdaptiveProc, PipelineError> {
        let (target, arg, res) = pipeline.resolve_shapes(idl, program, proc_num)?;
        Ok(AdaptiveProc {
            pipeline,
            target,
            arg,
            res,
        })
    }

    /// The cache key this procedure's compiles live under.
    pub fn key(&self) -> CacheKey {
        (
            self.target.0,
            self.target.1,
            self.target.2,
            ShapeKey::of(&self.pipeline, &self.arg, &self.res),
        )
    }

    fn job(&self) -> CompileJob {
        CompileJob {
            pipeline: self.pipeline.clone(),
            prog: self.target.0,
            vers: self.target.1,
            proc_num: self.target.2,
            arg: self.arg.clone(),
            res: self.res.clone(),
        }
    }
}

/// Promotion bookkeeping for one cold context.
#[derive(Default)]
struct Pending {
    hits: u32,
    queued: bool,
}

/// CPU-charge hook: receives nanoseconds of inline compile work.
type ChargeHook = Arc<dyn Fn(u64) + Send + Sync>;

/// Counter snapshot of an [`AdaptiveRuntime`] (rendered by
/// [`crate::Summary::with_adaptive`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Calls marshaled on Tier-0 (generic).
    pub tier0_calls: u64,
    /// Calls marshaled on Tier-1 (specialized).
    pub tier1_calls: u64,
    /// Contexts whose callers switched from Tier-0 to Tier-1 mid-stream
    /// (counted once per promotion, at the first post-publish lookup).
    pub hot_swaps: u64,
    /// Compiles queued (background jobs, plus inline compiles).
    pub compiles_queued: u64,
    /// Compiles finished.
    pub compiles_completed: u64,
    /// Deepest the background compile queue ever got.
    pub compile_queue_high_water: u64,
    /// Cache evictions split by the victim's compile-cost class.
    pub evictions_by_class: [u64; COST_CLASSES],
    /// Total compile time recorded by the cache (shared with eviction).
    pub compile_ns_total: u64,
}

/// The shared tiered-execution policy: a [`StubCache`] probe that never
/// compiles on the calling path (unless configured to), plus the
/// promotion ledger and the background [`Specializer`] pool.
pub struct AdaptiveRuntime {
    cfg: AdaptiveConfig,
    cache: Arc<StubCache>,
    spec: Option<Specializer>,
    pending: Mutex<HashMap<CacheKey, Pending>>,
    tier0: AtomicU64,
    tier1: AtomicU64,
    hot_swaps: AtomicU64,
    inline_compiles: AtomicU64,
    /// Hook charging inline-compile CPU time to a clock (the simulation
    /// wires `Network::advance` here so an inline Tempo run stalls the
    /// virtual clock the way it stalls a real caller).
    charge: Mutex<Option<ChargeHook>>,
}

impl AdaptiveRuntime {
    /// A runtime with its own cache sized by
    /// [`AdaptiveConfig::cache_entries`].
    pub fn new(cfg: AdaptiveConfig) -> Arc<AdaptiveRuntime> {
        let cache = Arc::new(StubCache::with_capacity(cfg.cache_entries));
        AdaptiveRuntime::with_cache(cfg, cache)
    }

    /// A runtime over an existing (possibly shared) cache.
    pub fn with_cache(cfg: AdaptiveConfig, cache: Arc<StubCache>) -> Arc<AdaptiveRuntime> {
        let spec = (!cfg.inline_compile).then(|| {
            Specializer::new(
                cache.clone(),
                cfg.workers,
                cfg.publish == PublishMode::OnDrain,
                CompileClock::Modeled,
            )
        });
        Arc::new(AdaptiveRuntime {
            cfg,
            cache,
            spec,
            pending: Mutex::new(HashMap::new()),
            tier0: AtomicU64::new(0),
            tier1: AtomicU64::new(0),
            hot_swaps: AtomicU64::new(0),
            inline_compiles: AtomicU64::new(0),
            charge: Mutex::new(None),
        })
    }

    /// The cache this runtime publishes into.
    pub fn cache(&self) -> &Arc<StubCache> {
        &self.cache
    }

    /// The configuration in force.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Install the inline-compile CPU-charge hook (e.g.
    /// `net.advance(SimTime::from_nanos(ns))` in simulation).
    pub fn set_charge(&self, f: impl Fn(u64) + Send + Sync + 'static) {
        *self.charge.lock().expect("charge lock") = Some(Arc::new(f));
    }

    /// Pick the tier for one call of `proc_` and do the promotion
    /// bookkeeping. Infallible: every failure mode (unsupported shape,
    /// compile error) degrades to [`Tier::Generic`], which always works.
    pub fn lookup(&self, proc_: &AdaptiveProc) -> Tier {
        let key = proc_.key();
        if let Some(cp) = self.cache.peek(&key) {
            self.tier1.fetch_add(1, Ordering::Relaxed);
            // First sight of the published compile for a context that
            // served Tier-0 traffic: that is the hot swap, exactly once
            // per promotion even when client and server share a runtime.
            if let Some(p) = self.pending.lock().expect("pending lock").remove(&key) {
                if p.hits > 0 {
                    self.hot_swaps.fetch_add(1, Ordering::Relaxed);
                }
            }
            return Tier::Specialized(cp);
        }
        let should_promote = {
            let mut pending = self.pending.lock().expect("pending lock");
            let p = pending.entry(key.clone()).or_default();
            p.hits += 1;
            let promote = !p.queued && p.hits >= self.cfg.promote_after;
            if promote {
                p.queued = true;
            }
            promote
        };
        if should_promote {
            if self.cfg.inline_compile {
                // The baseline stall: the K-th cold caller pays the whole
                // Tempo run before its bytes hit the wire.
                let (prog, vers, pnum) = proc_.target;
                if let Ok(cp) = self.cache.get_or_compile(
                    &proc_.pipeline,
                    prog,
                    vers,
                    pnum,
                    &proc_.arg,
                    &proc_.res,
                ) {
                    self.inline_compiles.fetch_add(1, Ordering::Relaxed);
                    let hook = self.charge.lock().expect("charge lock").clone();
                    if let Some(hook) = hook {
                        hook(modeled_compile_ns(&cp));
                    }
                    self.pending.lock().expect("pending lock").remove(&key);
                    self.tier1.fetch_add(1, Ordering::Relaxed);
                    return Tier::Specialized(cp);
                }
                // Compile failed (e.g. unsupported shape): `queued` stays
                // set so we never retry; the context serves Tier-0
                // forever.
            } else if let Some(spec) = &self.spec {
                spec.enqueue(proc_.job());
            }
        }
        self.tier0.fetch_add(1, Ordering::Relaxed);
        Tier::Generic
    }

    /// Compile-ahead: specialize `proc_` right now through the cache
    /// (used at service registration when
    /// [`AdaptiveConfig::compile_ahead`] is set, and available to warm
    /// any context by hand).
    pub fn precompile(&self, proc_: &AdaptiveProc) -> Result<Arc<CompiledProc>, PipelineError> {
        let (prog, vers, pnum) = proc_.target;
        self.cache
            .get_or_compile(&proc_.pipeline, prog, vers, pnum, &proc_.arg, &proc_.res)
    }

    /// Wait for every queued background compile, then (in
    /// [`PublishMode::OnDrain`]) flip the staged results live. Returns
    /// how many compiles became visible. The deterministic simulation
    /// calls this at fixed points; immediate-mode deployments never need
    /// to.
    pub fn drain(&self) -> usize {
        match &self.spec {
            Some(spec) => {
                spec.wait_idle();
                spec.publish_staged()
            }
            None => 0,
        }
    }

    /// Counter snapshot (tiers, compiles, hot-swaps, eviction classes).
    pub fn stats(&self) -> AdaptiveStats {
        let inline = self.inline_compiles.load(Ordering::Relaxed);
        let (queued, completed, high_water) = match &self.spec {
            Some(spec) => {
                let s = spec.stats();
                (s.queued, s.completed, s.depth_high_water)
            }
            None => (0, 0, 0),
        };
        let cs = self.cache.stats();
        AdaptiveStats {
            tier0_calls: self.tier0.load(Ordering::Relaxed),
            tier1_calls: self.tier1.load(Ordering::Relaxed),
            hot_swaps: self.hot_swaps.load(Ordering::Relaxed),
            compiles_queued: queued + inline,
            compiles_completed: completed + inline,
            compile_queue_high_water: high_water,
            evictions_by_class: cs.evictions_by_class,
            compile_ns_total: cs.compile_ns_total,
        }
    }
}

/// Exact wire size of `shape`'s payload for the argument values in
/// `args` (var-arrays priced at their actual length).
fn payload_wire_bytes(shape: &MsgShape, args: &StubArgs) -> usize {
    let mut bytes = 0;
    let mut a = 0;
    for f in &shape.fields {
        match f {
            FieldShape::Scalar { .. } => bytes += 4,
            FieldShape::VarIntArray { .. } => {
                bytes += 4 + 4 * args.arrays.get(a).map(Vec::len).unwrap_or(0);
                a += 1;
            }
            FieldShape::FixedIntArray { len, .. } => {
                bytes += 4 * len;
                a += 1;
            }
        }
    }
    bytes
}

/// A tier-picking RPC client for one adaptively specialized procedure:
/// the [`crate::SpecClient`] facade, but every call asks the shared
/// [`AdaptiveRuntime`] which marshaling tier to use. Cold calls go out
/// generic (and come back byte-identical); once the background compile
/// publishes, the same client hot-swaps onto the specialized stubs
/// mid-stream.
pub struct AdaptiveClient<T: Transport> {
    transport: T,
    runtime: Arc<AdaptiveRuntime>,
    proc_: AdaptiveProc,
    /// Reusable specialized-path request image.
    req: WireBuf,
    /// Scratch for the generic encoder's `&mut` slot convention.
    gen_scratch: StubArgs,
    /// Marshaling op/byte/alloc counts across both tiers.
    pub counts: OpCounts,
    /// Calls this client marshaled on Tier-0.
    pub tier0_calls: u64,
    /// Calls this client marshaled on Tier-1.
    pub tier1_calls: u64,
    /// Tier-1 calls whose reply decode fell back to the generic path
    /// (dynamic guard failure — still Tier-1 wire-wise).
    pub fallback_calls: u64,
    /// Calls performed.
    pub calls: u64,
}

impl<T: Transport> AdaptiveClient<T> {
    /// Wrap `transport` for `proc_`, deciding tiers through `runtime`.
    pub fn new(transport: T, runtime: Arc<AdaptiveRuntime>, proc_: AdaptiveProc) -> Self {
        AdaptiveClient {
            transport,
            runtime,
            proc_,
            req: WireBuf::new(),
            gen_scratch: StubArgs::default(),
            counts: OpCounts::new(),
            tier0_calls: 0,
            tier1_calls: 0,
            fallback_calls: 0,
            calls: 0,
        }
    }

    /// The runtime this client consults.
    pub fn runtime(&self) -> &Arc<AdaptiveRuntime> {
        &self.runtime
    }

    /// The procedure this client calls.
    pub fn proc_(&self) -> &AdaptiveProc {
        &self.proc_
    }

    /// Access the underlying transport (timeout tuning).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Build the argument [`StubArgs`] with the xid slot reserved (same
    /// convention as [`crate::SpecClient::args`], shared by both tiers).
    pub fn args(&self, scalars: Vec<i32>, arrays: Vec<Vec<i32>>) -> StubArgs {
        let mut all = Vec::with_capacity(scalars.len() + 1);
        all.push(0); // xid slot
        all.extend(scalars);
        StubArgs::new(all, arrays)
    }

    /// Perform the call, letting the runtime pick the tier. Returns the
    /// result slots and the tier that marshaled the request.
    pub fn call(&mut self, args: &StubArgs) -> Result<(StubArgs, TierUsed), RpcError> {
        let mut out = StubArgs::default();
        let tier = self.call_into(args, &mut out)?;
        Ok((out, tier))
    }

    /// [`AdaptiveClient::call`] into caller-provided result slots.
    pub fn call_into(&mut self, args: &StubArgs, out: &mut StubArgs) -> Result<TierUsed, RpcError> {
        let allocs_before = self.transport.wire_allocs();
        self.calls += 1;
        let result = self.call_inner(args, out);
        self.counts.heap_allocs += self.transport.wire_allocs() - allocs_before;
        result
    }

    fn call_inner(&mut self, args: &StubArgs, out: &mut StubArgs) -> Result<TierUsed, RpcError> {
        match self.runtime.lookup(&self.proc_) {
            Tier::Specialized(cp) => {
                self.tier1_calls += 1;
                let xid = self.transport.next_xid();
                let enc = &cp.client_encode;
                self.req.reset(enc.wire_len);
                run_encode_with_xid(
                    &enc.program,
                    self.req.bytes_mut(),
                    args,
                    xid as i32,
                    &mut self.counts,
                )
                .map_err(|e| RpcError::Transport(e.to_string()))?;
                let wb_counts = *self.req.counts();
                self.req.counts_mut().reset();
                self.counts += wb_counts;
                let reply = self.transport.call(self.req.bytes(), xid)?;
                let result = self.decode_specialized(&cp, &reply, out);
                self.transport.recycle(reply);
                result.map(|()| TierUsed::Specialized)
            }
            Tier::Generic => {
                self.tier0_calls += 1;
                let xid = self.transport.next_xid();
                let request = self.encode_request_generic(args, xid)?;
                let reply = self.transport.call(&request, xid)?;
                let result = self.decode_reply_generic(&reply, out);
                self.transport.recycle(reply);
                result.map(|()| TierUsed::Generic)
            }
        }
    }

    /// Tier-0 request marshaling: layered header encode + generic shape
    /// walk. Public so the byte-identity tests can compare its output
    /// against the compiled stub's image for the same `(args, xid)`.
    pub fn encode_request_generic(
        &mut self,
        args: &StubArgs,
        xid: u32,
    ) -> Result<Vec<u8>, RpcError> {
        let (prog, vers, pnum) = self.proc_.target;
        let mut hdr = CallHeader::new(xid, prog, vers, pnum);
        let cap = hdr.wire_size() + payload_wire_bytes(&self.proc_.arg, args);
        let mut enc = XdrMem::encoder(cap);
        CallHeader::xdr(&mut enc, &mut hdr)?;
        self.gen_scratch.clone_from(args);
        encode_shape_generic(&mut enc, &self.proc_.arg, 1, &mut self.gen_scratch)?;
        self.counts += *enc.counts();
        Ok(enc.into_bytes())
    }

    /// Tier-1 reply decode: compiled stub with the generic fallback on
    /// guard failure (same semantics as [`crate::SpecClient`]).
    fn decode_specialized(
        &mut self,
        cp: &CompiledProc,
        reply: &[u8],
        out: &mut StubArgs,
    ) -> Result<(), RpcError> {
        let dec = &cp.client_decode;
        out.prepare(
            dec.layout.scalar_count as usize,
            dec.layout.array_count as usize,
        );
        match run_decode(&dec.program, reply, out, reply.len(), &mut self.counts) {
            Ok(Outcome::Done { ret: 1, .. }) => Ok(()),
            Ok(Outcome::Done { .. }) | Ok(Outcome::Fallback) => {
                self.fallback_calls += 1;
                self.decode_reply_generic(reply, out)
            }
            Err(e) => Err(RpcError::Transport(e.to_string())),
        }
    }

    /// Tier-0 reply decode: full header validation + generic shape walk.
    /// The slot convention matches the compiled decoder's layout
    /// (protocol fields first), so results land in the same places on
    /// both tiers.
    fn decode_reply_generic(&mut self, reply: &[u8], out: &mut StubArgs) -> Result<(), RpcError> {
        let mut dec = XdrMem::decoder(reply);
        let hdr = ReplyHeader::decode(&mut dec)?;
        if let Some(err) = hdr.to_error() {
            return Err(err);
        }
        let (rs, ra) = shape_counts(&self.proc_.res);
        out.prepare(reply_fields::COUNT + rs, ra);
        decode_shape_generic(&mut dec, &self.proc_.res, reply_fields::COUNT as u16, out)?;
        self.counts += *dec.counts();
        Ok(())
    }
}
