//! The specialized server facade: a service hosting many procedures.
//!
//! [`SpecService`] collects `(compiled stubs, handler)` pairs and installs
//! each as *both* a raw fast-path handler (compiled decode → user function
//! → compiled encode) and a generic handler on one [`SvcRegistry`], so
//! dispatch happens by procedure number and every procedure keeps the
//! §6.2 guard fallback. The same registry serves over UDP or TCP — the
//! transport adapters are below the dispatch layer.
//!
//! # Threading model
//!
//! The whole serving stack is `Send + Sync`: handlers are
//! `Arc<dyn Fn … + Send + Sync>`, the registry is interior-locked, and
//! the network is shareable across threads, so one installed service can
//! be driven (and dispatched) from any number of threads. On top of that,
//! [`SpecService::serve_threaded`] processes independent requests on a
//! dedicated worker pool — per-datagram for UDP, per-connection for TCP —
//! while every worker shares the one registry (and therefore one
//! `StubCache`-compiled stub set); per-worker dispatch counts surface
//! through [`crate::Summary`].

use crate::adaptive::{AdaptiveProc, AdaptiveRuntime, Tier};
use crate::generic::{decode_shape_generic, encode_shape_generic, shape_counts};
use crate::pipeline::CompiledProc;
use specrpc_netsim::net::{Addr, Network};
use specrpc_rpc::bufpool::BufPool;
use specrpc_rpc::error::RpcError;
use specrpc_rpc::msg::ReplyHeader;
use specrpc_rpc::svc::{SvcRegistry, REPLY_BUF_SIZE};
use specrpc_rpc::svc_event::{serve_udp_event, EventLoop};
use specrpc_rpc::svc_shard::{serve_udp_sharded, ShardPlan, ShardedEventLoop};
use specrpc_rpc::svc_tcp::serve_tcp;
use specrpc_rpc::svc_threaded::{attach_tcp, attach_udp, DispatchPool};
use specrpc_rpc::svc_udp::serve_udp;
use specrpc_rpc::svc_udp::DUP_CACHE_ENTRIES;
use specrpc_rpcgen::sunlib::call_fields;
use specrpc_tempo::compile::{run_decode, run_encode, Outcome, StubArgs};
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::OpCounts;
use std::sync::{Arc, Mutex};

/// A user service function: argument slots in, result slots out. `Arc`
/// with `Send + Sync` because one handler backs both the fast and the
/// generic path and may run on any dispatch thread.
pub type SpecHandler = Arc<dyn Fn(&StubArgs) -> StubArgs + Send + Sync>;

/// One registered procedure: statically specialized (the paper's model —
/// stubs compiled before serving) or adaptively tiered (Tier-0 generic
/// until the shared [`AdaptiveRuntime`] publishes a compile).
enum ProcEntry {
    Static(Arc<CompiledProc>, SpecHandler),
    Adaptive(Arc<AdaptiveRuntime>, AdaptiveProc, SpecHandler),
}

/// A specialized RPC service: multiple procedures, each dispatched by
/// `(program, version, procedure)` number with a compiled fast path and a
/// generic fallback.
#[derive(Default)]
pub struct SpecService {
    procs: Vec<ProcEntry>,
}

/// A service deployed through [`SpecService::serve_threaded`]: the shared
/// registry plus the worker pool that dispatches its requests.
pub struct ThreadedService {
    /// The shared dispatch registry (path counters, unregister).
    pub registry: Arc<SvcRegistry>,
    /// The worker pool (per-thread dispatch counts).
    pub pool: Arc<DispatchPool>,
}

impl ThreadedService {
    /// Requests dispatched per worker thread — feed this to
    /// [`crate::Summary::with_threads`].
    pub fn per_thread_dispatches(&self) -> Vec<u64> {
        self.pool.per_thread_dispatches()
    }

    /// Additionally serve the same registry and pool over TCP at `addr`
    /// (per-connection worker pinning).
    pub fn also_tcp(&self, net: &Network, addr: Addr) -> &Self {
        attach_tcp(net, addr, self.pool.clone(), None);
        self
    }
}

/// A service deployed through [`SpecService::serve_event`]: the shared
/// registry plus the event reactor draining its readiness queue.
///
/// Dropping the service shuts the reactor down (workers joined, the
/// event-mode address released).
pub struct EventService {
    /// The shared dispatch registry (path counters, unregister).
    pub registry: Arc<SvcRegistry>,
    /// The reactor (per-worker event throughput counts).
    pub reactor: EventLoop,
}

impl EventService {
    /// Events processed per reactor worker — feed this to
    /// [`crate::Summary::with_events`].
    pub fn per_worker_events(&self) -> Vec<u64> {
        self.reactor.per_worker_events()
    }

    /// Total events processed by the reactor.
    pub fn total_events(&self) -> u64 {
        self.reactor.total_events()
    }
}

/// A service deployed through [`SpecService::serve_sharded`]: the shared
/// registry plus the shard map serving it — N reactors, each owning its
/// slice of the address space with that slice's dup caches and buffer
/// pool, stealing cross-shard when dry.
///
/// Dropping the service shuts every shard down (workers joined, the
/// event-mode addresses released).
pub struct ShardedService {
    /// The shared dispatch registry (path counters, unregister).
    pub registry: Arc<SvcRegistry>,
    /// The shard map (per-shard throughput, steal counts).
    pub reactor: ShardedEventLoop,
}

impl ShardedService {
    /// Events processed per shard — feed this to
    /// [`crate::Summary::with_shards`].
    pub fn per_shard_events(&self) -> Vec<u64> {
        self.reactor.per_shard_events()
    }

    /// Total events processed across the map.
    pub fn total_events(&self) -> u64 {
        self.reactor.total_events()
    }

    /// Cross-shard steals performed by idle shard workers.
    pub fn cross_shard_steals(&self) -> u64 {
        self.reactor.cross_shard_steals()
    }
}

impl SpecService {
    /// An empty service.
    pub fn new() -> Self {
        SpecService::default()
    }

    /// Fluently add a procedure: `proc_`'s target numbers route to
    /// `handler`.
    pub fn proc(
        mut self,
        proc_: Arc<CompiledProc>,
        handler: impl Fn(&StubArgs) -> StubArgs + Send + Sync + 'static,
    ) -> Self {
        self.procs.push(ProcEntry::Static(proc_, Arc::new(handler)));
        self
    }

    /// Add a procedure with an already-shared handler.
    pub fn proc_shared(mut self, proc_: Arc<CompiledProc>, handler: SpecHandler) -> Self {
        self.procs.push(ProcEntry::Static(proc_, handler));
        self
    }

    /// Add an **adaptively specialized** procedure: dispatch asks
    /// `runtime` which tier serves each call — the compiled fast path
    /// once a specialization is published, the generic path while the
    /// context is cold. No Tempo run happens at registration unless
    /// [`crate::AdaptiveConfig::compile_ahead`] is set, in which case the
    /// cache is pre-seeded here so the first call already hits Tier-1.
    ///
    /// Sharing one runtime between this service and its
    /// [`crate::AdaptiveClient`]s makes both sides hot-swap on the same
    /// published compile; each call then contributes one client-side and
    /// one server-side lookup to the promotion ledger.
    pub fn proc_adaptive(
        mut self,
        runtime: Arc<AdaptiveRuntime>,
        proc_: AdaptiveProc,
        handler: impl Fn(&StubArgs) -> StubArgs + Send + Sync + 'static,
    ) -> Self {
        self.procs
            .push(ProcEntry::Adaptive(runtime, proc_, Arc::new(handler)));
        self
    }

    /// Number of procedures hosted.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether the service hosts no procedures.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Install every procedure on `registry`, fast path + generic
    /// fallback each.
    pub fn install(self, registry: &SvcRegistry) {
        for entry in self.procs {
            match entry {
                ProcEntry::Static(proc_, handler) => install_one(registry, proc_, handler),
                ProcEntry::Adaptive(runtime, proc_, handler) => {
                    install_one_adaptive(registry, runtime, proc_, handler)
                }
            }
        }
    }

    /// Install into a fresh shared registry.
    pub fn into_registry(self) -> Arc<SvcRegistry> {
        let reg = SvcRegistry::new();
        self.install(&reg);
        Arc::new(reg)
    }

    /// Install into a fresh registry and serve it over UDP at `addr`.
    pub fn serve_udp(self, net: &Network, addr: Addr) -> Arc<SvcRegistry> {
        let reg = self.into_registry();
        serve_udp(net, addr, reg.clone(), None);
        reg
    }

    /// Install into a fresh registry and serve it over TCP at `addr`.
    pub fn serve_tcp(self, net: &Network, addr: Addr) -> Arc<SvcRegistry> {
        let reg = self.into_registry();
        serve_tcp(net, addr, reg.clone(), None);
        reg
    }

    /// Install into a fresh registry and serve it over UDP at `addr`,
    /// dispatching each datagram on a pool of `pool_size` worker threads
    /// that share the registry (and any `StubCache`-compiled stubs).
    /// Chain [`ThreadedService::also_tcp`] to serve TCP from the same
    /// pool with per-connection worker pinning.
    pub fn serve_threaded(self, net: &Network, addr: Addr, pool_size: usize) -> ThreadedService {
        let registry = self.into_registry();
        let pool = Arc::new(DispatchPool::new(registry.clone(), pool_size));
        attach_udp(net, addr, pool.clone(), None);
        ThreadedService { registry, pool }
    }

    /// Install into a fresh registry and serve it over UDP at `addr`
    /// through the **event-driven core**: deliveries become readiness
    /// events and `workers` reactor threads drain them round-robin
    /// through the pooled dispatch path (dup cache, `BufPool`, zero-copy
    /// reply encode all preserved). Unlike [`SpecService::serve_udp`],
    /// in-flight requests to this one address process in parallel
    /// instead of serializing on a handler slot; unlike
    /// [`SpecService::serve_threaded`], the delivering thread never
    /// blocks on a reply hand-off, which is what lets
    /// [`crate::SpecClient::call_batch`] keep a whole batch in flight.
    ///
    /// With one worker and one driving thread the deployment is byte-
    /// and virtual-time-identical to `serve_udp`; per-worker throughput
    /// surfaces through [`crate::Summary::with_events`].
    pub fn serve_event(self, net: &Network, addr: Addr, workers: usize) -> EventService {
        let registry = self.into_registry();
        let reactor = serve_udp_event(net, addr, registry.clone(), workers, None);
        EventService { registry, reactor }
    }

    /// Install into a fresh registry and serve it at `addrs` through a
    /// **shard map** of `shards` reactors: each address is assigned to a
    /// shard (modulo spread), and each shard owns its slice's
    /// duplicate-request caches and wire-buffer pool plus
    /// `workers_per_shard` reactor threads; a shard whose queues run dry
    /// steals one datagram at a time from its peers.
    ///
    /// `workers_per_shard == 0` is the **deterministic single-driver
    /// mode**: no threads are spawned and every delivery executes inline
    /// on the driving thread, producing byte- and virtual-time-identical
    /// traces for any shard count (the shard map then only partitions
    /// cache/pool ownership). This is the mode the million-client
    /// scenario measures.
    pub fn serve_sharded(
        self,
        net: &Network,
        addrs: &[Addr],
        shards: usize,
        workers_per_shard: usize,
    ) -> ShardedService {
        let registry = self.into_registry();
        let reactor = serve_udp_sharded(
            net,
            addrs,
            registry.clone(),
            ShardPlan::modulo(shards),
            workers_per_shard,
            None,
            DUP_CACHE_ENTRIES,
        );
        ShardedService { registry, reactor }
    }
}

/// The compiled fast-path dispatch body shared by static and adaptive
/// registrations: compiled decode into reused scratch slots → user
/// handler → compiled encode in one pass straight into a pooled reply
/// buffer (single-copy encode; the buffer returns through the transport
/// adapter's cache-eviction recycling). `None` sends the request to the
/// generic dispatch (§6.2 guard fallback).
fn raw_dispatch(
    p: &CompiledProc,
    scratch: &Mutex<StubArgs>,
    h: &SpecHandler,
    request: &[u8],
    pool: &BufPool,
) -> Option<Vec<u8>> {
    let dec = &p.server_decode;
    let mut counts = OpCounts::new();
    // Argument slots: per-procedure scratch when uncontended (the
    // steady, allocation-free state); a fresh set when another worker
    // is mid-dispatch on the same procedure.
    let mut fresh: Option<StubArgs> = None;
    let mut guard = scratch.try_lock();
    let args: &mut StubArgs = match guard {
        Ok(ref mut g) => g,
        Err(_) => fresh.get_or_insert_with(StubArgs::default),
    };
    args.prepare(
        dec.layout.scalar_count as usize,
        dec.layout.array_count as usize,
    );
    match run_decode(&dec.program, request, args, request.len(), &mut counts) {
        Ok(Outcome::Done { ret: 1, .. }) => {}
        _ => return None, // guard failed → generic path
    }
    let xid = args.scalars[call_fields::XID];
    let results = h(args);
    let enc = &p.server_encode;
    let mut full = results;
    // Reply stub scalar slot 0 is the xid.
    full.scalars.insert(0, xid);
    let mut reply = pool.take(enc.wire_len);
    reply.resize(enc.wire_len, 0);
    match run_encode(&enc.program, &mut reply, &full, &mut counts) {
        Ok(Outcome::Done { ret: 1, .. }) => Some(reply),
        _ => {
            // Reply-shape guard failed: the handler produced
            // results outside the pinned context. Degrade to the
            // generic encoder with the results we already have —
            // returning None would re-dispatch generically and
            // run the (possibly side-effecting) handler twice.
            pool.put(reply);
            let mut gx = XdrMem::encoder_over(pool.take(REPLY_BUF_SIZE), REPLY_BUF_SIZE);
            ReplyHeader::encode_success(&mut gx, xid as u32).ok()?;
            // `full` carries the xid at scalar slot 0; user
            // result scalars start at 1.
            encode_shape_generic(&mut gx, &p.res_shape, 1, &mut full).ok()?;
            Some(gx.into_bytes())
        }
    }
}

/// Install one procedure's fast and generic handlers on the registry.
fn install_one(registry: &SvcRegistry, proc_: Arc<CompiledProc>, handler: SpecHandler) {
    let (prog, vers, pnum) = proc_.target;

    let p = proc_.clone();
    let h = handler.clone();
    let scratch: Mutex<StubArgs> = Mutex::new(StubArgs::default());
    registry.register_raw(prog, vers, pnum, move |request: &[u8], pool: &BufPool| {
        raw_dispatch(&p, &scratch, &h, request, pool)
    });

    // Generic path (also serves guard fallbacks).
    let p = proc_;
    let h = handler;
    registry.register(prog, vers, pnum, move |args_x, results_x| {
        let dec = &p.server_decode;
        let mut args = StubArgs::new(
            vec![0; dec.layout.scalar_count as usize],
            vec![Vec::new(); dec.layout.array_count as usize],
        );
        decode_shape_generic(args_x, &p.arg_shape, call_fields::COUNT as u16, &mut args)
            .map_err(RpcError::from)?;
        let mut results = h(&args);
        // Generic results have no xid scratch; encode from slot 0.
        encode_shape_generic(results_x, &p.res_shape, 0, &mut results).map_err(RpcError::from)?;
        Ok(())
    });
}

/// Install one adaptively specialized procedure: the raw handler asks the
/// runtime which tier serves each call (server-side lookups feed the same
/// promotion ledger as client-side ones), and the generic handler is
/// sized purely from the resolved shapes — no compile required for a
/// service to start serving.
fn install_one_adaptive(
    registry: &SvcRegistry,
    runtime: Arc<AdaptiveRuntime>,
    proc_: AdaptiveProc,
    handler: SpecHandler,
) {
    let (prog, vers, pnum) = proc_.target;
    if runtime.config().compile_ahead {
        // Pre-seed the cache at registration; unsupported shapes simply
        // stay generic-only.
        let _ = runtime.precompile(&proc_);
    }

    let rt = runtime;
    let ap = proc_.clone();
    let h = handler.clone();
    let scratch: Mutex<StubArgs> = Mutex::new(StubArgs::default());
    registry.register_raw(prog, vers, pnum, move |request: &[u8], pool: &BufPool| {
        match rt.lookup(&ap) {
            Tier::Specialized(cp) => raw_dispatch(&cp, &scratch, &h, request, pool),
            // Tier-0: hand the request to the generic dispatch below.
            Tier::Generic => None,
        }
    });

    let h = handler;
    let arg_shape = proc_.arg.clone();
    let res_shape = proc_.res.clone();
    let (arg_scalars, arg_arrays) = shape_counts(&arg_shape);
    registry.register(prog, vers, pnum, move |args_x, results_x| {
        let mut args = StubArgs::new(
            vec![0; call_fields::COUNT + arg_scalars],
            vec![Vec::new(); arg_arrays],
        );
        decode_shape_generic(args_x, &arg_shape, call_fields::COUNT as u16, &mut args)
            .map_err(RpcError::from)?;
        let mut results = h(&args);
        encode_shape_generic(results_x, &res_shape, 0, &mut results).map_err(RpcError::from)?;
        Ok(())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{PathUsed, SpecClient};
    use crate::pipeline::ProcPipeline;
    use specrpc_netsim::net::NetworkConfig;
    use specrpc_rpc::ClntUdp;

    const IDL: &str = r#"
        const MAXARR = 2000;
        struct int_arr { int arr<MAXARR>; };
        program ARRAYPROG {
            version ARRAYVERS {
                int_arr ECHO(int_arr) = 1;
                int SUM(int_arr) = 2;
            } = 1;
        } = 0x20000101;
    "#;

    #[test]
    fn serving_stack_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpecService>();
        assert_send_sync::<SvcRegistry>();
        assert_send_sync::<Network>();
        assert_send_sync::<ThreadedService>();
        assert_send_sync::<EventService>();
        assert_send_sync::<ShardedService>();
    }

    fn setup(n: usize) -> (Network, SpecClient<ClntUdp>, Arc<SvcRegistry>) {
        let cp = Arc::new(ProcPipeline::new(n).build_from_idl(IDL, None, 1).unwrap());
        let net = Network::new(NetworkConfig::lan(), 7);
        let reg = SpecService::new()
            .proc(cp.clone(), |args: &StubArgs| {
                // Echo with doubling so we can see the server ran.
                let doubled: Vec<i32> = args.arrays[0].iter().map(|v| v * 2).collect();
                StubArgs::new(vec![], vec![doubled])
            })
            .serve_udp(&net, 800);
        let clnt = ClntUdp::create(&net, 5100, 800, 0x2000_0101, 1);
        (net, SpecClient::from_parts(clnt, cp), reg)
    }

    #[test]
    fn fast_call_round_trips() {
        let (_net, mut client, reg) = setup(10);
        let data: Vec<i32> = (0..10).collect();
        let args = client.args(vec![], vec![data.clone()]);
        let (out, path) = client.call(&args).unwrap();
        assert_eq!(path, PathUsed::Fast);
        let want: Vec<i32> = data.iter().map(|v| v * 2).collect();
        assert_eq!(out.arrays[0], want);
        assert_eq!(reg.raw_dispatches(), 1);
        assert_eq!(reg.generic_dispatches(), 0);
        assert!(client.counts.stub_ops > 0);
    }

    #[test]
    fn service_hosts_multiple_procedures() {
        // One service, two procedures with different shapes, dispatched
        // by procedure number — both on the fast path.
        let n = 6;
        let pipeline = ProcPipeline::new(n);
        let echo = Arc::new(pipeline.build_from_idl(IDL, None, 1).unwrap());
        let sum = Arc::new(pipeline.build_from_idl(IDL, None, 2).unwrap());
        let net = Network::new(NetworkConfig::lan(), 9);
        let reg = SpecService::new()
            .proc(echo.clone(), |args: &StubArgs| {
                StubArgs::new(vec![], vec![args.arrays[0].clone()])
            })
            .proc(sum.clone(), |args: &StubArgs| {
                StubArgs::new(vec![args.arrays[0].iter().sum()], vec![])
            })
            .serve_udp(&net, 801);

        let data: Vec<i32> = (1..=n as i32).collect();
        let mut echo_client =
            SpecClient::from_parts(ClntUdp::create(&net, 5200, 801, 0x2000_0101, 1), echo);
        let args = echo_client.args(vec![], vec![data.clone()]);
        let (out, path) = echo_client.call(&args).unwrap();
        assert_eq!(path, PathUsed::Fast);
        assert_eq!(out.arrays[0], data);

        let mut sum_client =
            SpecClient::from_parts(ClntUdp::create(&net, 5201, 801, 0x2000_0101, 1), sum);
        let args = sum_client.args(vec![], vec![data.clone()]);
        let (out, path) = sum_client.call(&args).unwrap();
        assert_eq!(path, PathUsed::Fast);
        assert_eq!(*out.scalars.last().unwrap(), 21);
        assert_eq!(reg.raw_dispatches(), 2);
    }

    #[test]
    fn generic_client_triggers_server_guard_fallback() {
        // The server is specialized for 10 elements. A *generic* client
        // sends 7: the server's inlen guard fails, the generic dispatch
        // answers, and semantics are preserved (§6.2 else branch).
        let (net, _spec_client, reg) = setup(10);
        let mut generic = ClntUdp::create(&net, 5200, 800, 0x2000_0101, 1);
        let mut out: Vec<i32> = Vec::new();
        generic
            .call(
                1,
                &mut |x| {
                    let mut v: Vec<i32> = (0..7).collect();
                    specrpc_xdr::composite::xdr_array(
                        x,
                        &mut v,
                        2000,
                        specrpc_xdr::primitives::xdr_int,
                    )
                },
                &mut |x| {
                    specrpc_xdr::composite::xdr_array(
                        x,
                        &mut out,
                        2000,
                        specrpc_xdr::primitives::xdr_int,
                    )
                },
            )
            .unwrap();
        let want: Vec<i32> = (0..7).map(|v| v * 2).collect();
        assert_eq!(out, want);
        assert_eq!(reg.raw_fallbacks(), 1);
        assert_eq!(reg.generic_dispatches(), 1);
    }

    #[test]
    fn error_reply_reaches_client_through_fallback() {
        // Call a procedure number the server does not implement via the
        // specialized client: the ProcUnavail reply fails the reply
        // guard, the generic decoder runs and surfaces the proper error.
        let cp10 = Arc::new(ProcPipeline::new(1).build_from_idl(IDL, None, 1).unwrap());
        let net = Network::new(NetworkConfig::lan(), 9);
        let reg = SvcRegistry::new();
        // Program registered with no procedures beyond NULL.
        reg.register(0x2000_0101, 1, 0, |_, _| Ok(()));
        serve_udp(&net, 802, Arc::new(reg), None);
        let clnt = ClntUdp::create(&net, 5300, 802, 0x2000_0101, 1);
        let mut client = SpecClient::from_parts(clnt, cp10);
        let args = client.args(vec![], vec![vec![42]]);
        let err = client.call(&args).unwrap_err();
        assert_eq!(err, RpcError::ProcUnavail);
        assert_eq!(client.fallback_calls, 1);
    }

    #[test]
    fn wrong_wire_size_from_client_side() {
        // Encode stub wire length is fixed per context; sending a
        // different count than the pinned length is a caller error the
        // stub detects as BadElem (too few) — the API requires matching
        // the context, mirroring per-size specialized binaries (Table 3).
        let (_net, mut client, _reg) = setup(10);
        let args = client.args(vec![], vec![vec![1, 2, 3]]);
        assert!(client.call(&args).is_err());
    }

    #[test]
    fn event_service_round_trips_and_counts_per_worker() {
        let n = 8;
        let cp = Arc::new(ProcPipeline::new(n).build_from_idl(IDL, None, 1).unwrap());
        let net = Network::new(NetworkConfig::lan(), 13);
        let served = SpecService::new()
            .proc(cp.clone(), |args: &StubArgs| {
                StubArgs::new(vec![], vec![args.arrays[0].clone()])
            })
            .serve_event(&net, 804, 2);

        let clnt = ClntUdp::create(&net, 5500, 804, 0x2000_0101, 1);
        let mut client = SpecClient::from_parts(clnt, cp);
        let data: Vec<i32> = (0..n as i32).collect();
        for _ in 0..6 {
            let args = client.args(vec![], vec![data.clone()]);
            let (out, path) = client.call(&args).unwrap();
            assert_eq!(path, PathUsed::Fast);
            assert_eq!(out.arrays[0], data);
        }
        let per = served.per_worker_events();
        assert_eq!(per.len(), 2);
        // Worker counts plus driver steals cover every request: on a
        // single-core host the driving thread steals most of them.
        assert_eq!(served.total_events(), 6);
        assert_eq!(per.iter().sum::<u64>() + served.reactor.stolen_events(), 6);
        assert_eq!(served.registry.raw_dispatches(), 6);
    }

    #[test]
    fn batched_calls_through_the_event_service() {
        let n = 8;
        let cp = Arc::new(ProcPipeline::new(n).build_from_idl(IDL, None, 1).unwrap());
        let net = Network::new(NetworkConfig::lan(), 13);
        let served = SpecService::new()
            .proc(cp.clone(), |args: &StubArgs| {
                StubArgs::new(vec![], vec![args.arrays[0].clone()])
            })
            .serve_event(&net, 805, 1);

        let clnt = ClntUdp::create(&net, 5501, 805, 0x2000_0101, 1);
        let mut client = SpecClient::from_parts(clnt, cp);
        let batch: Vec<StubArgs> = (0..5)
            .map(|k| {
                let data: Vec<i32> = (k..k + n as i32).collect();
                client.args(vec![], vec![data])
            })
            .collect();
        let results = client.call_batch(&batch).unwrap();
        assert_eq!(results.len(), 5);
        for (k, (out, path)) in results.iter().enumerate() {
            let want: Vec<i32> = (k as i32..k as i32 + n as i32).collect();
            assert_eq!(*path, PathUsed::Fast);
            assert_eq!(out.arrays[0], want, "submission order preserved");
        }
        assert_eq!(served.total_events(), 5);
        assert_eq!(client.fast_calls, 5);
        assert_eq!(client.calls, 5);
    }

    #[test]
    fn sharded_service_round_trips_and_counts_per_shard() {
        let n = 8;
        let cp = Arc::new(ProcPipeline::new(n).build_from_idl(IDL, None, 1).unwrap());
        let net = Network::new(NetworkConfig::lan(), 13);
        let ports: Vec<u32> = (806..810).collect();
        let served = SpecService::new()
            .proc(cp.clone(), |args: &StubArgs| {
                StubArgs::new(vec![], vec![args.arrays[0].clone()])
            })
            .serve_sharded(&net, &ports, 2, 0);

        let data: Vec<i32> = (0..n as i32).collect();
        for (i, &port) in ports.iter().enumerate() {
            let clnt = ClntUdp::create(&net, 5600 + i as u32, port, 0x2000_0101, 1);
            let mut client = SpecClient::from_parts(clnt, cp.clone());
            let args = client.args(vec![], vec![data.clone()]);
            let (out, path) = client.call(&args).unwrap();
            assert_eq!(path, PathUsed::Fast);
            assert_eq!(out.arrays[0], data);
        }
        let per = served.per_shard_events();
        assert_eq!(per.len(), 2);
        assert_eq!(served.total_events(), 4);
        assert_eq!(per, vec![2, 2], "modulo spread over even/odd ports");
        assert_eq!(served.registry.raw_dispatches(), 4);
        let report = crate::Summary::default().with_shards(per).render();
        assert!(report.contains("shard map"));
    }

    #[test]
    fn threaded_service_round_trips_and_counts_per_worker() {
        let n = 8;
        let cp = Arc::new(ProcPipeline::new(n).build_from_idl(IDL, None, 1).unwrap());
        let net = Network::new(NetworkConfig::lan(), 13);
        let served = SpecService::new()
            .proc(cp.clone(), |args: &StubArgs| {
                StubArgs::new(vec![], vec![args.arrays[0].clone()])
            })
            .serve_threaded(&net, 803, 3);

        let clnt = ClntUdp::create(&net, 5400, 803, 0x2000_0101, 1);
        let mut client = SpecClient::from_parts(clnt, cp);
        let data: Vec<i32> = (0..n as i32).collect();
        for _ in 0..6 {
            let args = client.args(vec![], vec![data.clone()]);
            let (out, path) = client.call(&args).unwrap();
            assert_eq!(path, PathUsed::Fast);
            assert_eq!(out.arrays[0], data);
        }
        let per = served.per_thread_dispatches();
        assert_eq!(per.len(), 3);
        assert_eq!(per.iter().sum::<u64>(), 6);
        assert!(per.iter().all(|&c| c == 2), "round-robin: {per:?}");
        assert_eq!(served.registry.raw_dispatches(), 6);
    }
}
