//! Memoization of the Tempo pipeline: one compiled stub set per
//! specialization context.
//!
//! The paper builds one specialized binary per `(procedure, array size)`
//! context (Table 3). At scale — many concurrent services, many clients —
//! the same contexts recur constantly, and re-running
//! binding-time analysis + specialization + compilation per call site
//! would dwarf the marshaling savings. [`StubCache`] keys compiled
//! [`CompiledProc`]s by `(program, version, procedure,` [`ShapeKey`]`)`
//! and hands out [`Arc`]s, so a context is specialized exactly once and
//! shared by every client/server that needs it (the `Arc` + interior
//! `Mutex` make the cache shareable across threads once the dispatch
//! layer goes multi-threaded).

use crate::pipeline::{CompiledProc, PipelineError, ProcPipeline};
use specrpc_rpcgen::stubgen::MsgShape;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The specialization-context identity of a compiled stub set: everything
/// that changes the residual code. Two call sites with equal keys can
/// share one Tempo run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    /// Pinned length for counted arrays (the per-size context).
    pub pinned_len: usize,
    /// Bounded-unroll chunk (Table 4); `None` = full unrolling.
    pub chunk: Option<usize>,
    /// Target icache budget for the automatic unroll-bound picker —
    /// part of the identity because two pipelines with equal shapes but
    /// different budgets can compile different residuals.
    pub icache_budget: Option<usize>,
    /// Argument message shape.
    pub arg: MsgShape,
    /// Result message shape.
    pub res: MsgShape,
}

impl ShapeKey {
    /// The key for compiling `arg`/`res` under `pipeline`'s context.
    pub fn of(pipeline: &ProcPipeline, arg: &MsgShape, res: &MsgShape) -> ShapeKey {
        ShapeKey {
            pinned_len: pipeline.pinned_len,
            chunk: pipeline.chunk,
            icache_budget: pipeline.icache_budget,
            arg: arg.clone(),
            res: res.clone(),
        }
    }
}

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (no Tempo run).
    pub hits: u64,
    /// Lookups that ran the full pipeline.
    pub misses: u64,
    /// Distinct compiled contexts currently held.
    pub entries: usize,
    /// Entries discarded to stay within the cache's capacity (each one a
    /// future re-compile if its context recurs).
    pub evictions: u64,
}

/// Full cache key: `(program, version, procedure,` [`ShapeKey`]`)`.
pub type CacheKey = (u32, u32, u32, ShapeKey);

/// One cache entry: a per-context lock around the compile result, so
/// concurrent requests for the *same* context serialize on their entry
/// (compile exactly once) while different contexts compile in parallel.
type Slot = Arc<Mutex<Option<Arc<CompiledProc>>>>;

/// Default entry capacity: generous next to the paper's Table 3 (one
/// context per procedure × array size) yet a hard bound, so a service
/// fed adversarially varied shapes cannot grow the cache without limit.
pub const DEFAULT_STUB_CACHE_ENTRIES: usize = 256;

/// The slot plus its last-used tick (for least-recently-used eviction).
struct Entry {
    slot: Slot,
    last_used: u64,
}

/// A shape-keyed cache of compiled stub sets, bounded to a fixed number
/// of contexts with least-recently-used eviction.
pub struct StubCache {
    /// Map + monotone access tick, under one lock.
    map: Mutex<(HashMap<CacheKey, Entry>, u64)>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for StubCache {
    fn default() -> Self {
        StubCache::new()
    }
}

impl StubCache {
    /// An empty cache holding at most [`DEFAULT_STUB_CACHE_ENTRIES`]
    /// contexts.
    pub fn new() -> Self {
        StubCache::with_capacity(DEFAULT_STUB_CACHE_ENTRIES)
    }

    /// An empty cache holding at most `cap` contexts; the least recently
    /// used entry is evicted when an insertion would exceed the bound.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "stub cache needs capacity for at least one entry");
        StubCache {
            map: Mutex::new((HashMap::new(), 0)),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Entry capacity (the LRU bound).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Hit/miss/entry/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            // Count only filled slots (a failed compile leaves none).
            entries: self
                .map
                .lock()
                .expect("cache lock")
                .0
                .values()
                .filter(|e| e.slot.lock().expect("slot lock").is_some())
                .count(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Return the compiled stub set for the context, running the Tempo
    /// pipeline only on a miss. The global map lock is held only to find
    /// or create the entry (and evict the least recently used one when
    /// over capacity); the compile itself holds the per-entry lock, so
    /// one context is never specialized twice and unrelated contexts
    /// never wait on each other's compiles.
    pub fn get_or_compile(
        &self,
        pipeline: &ProcPipeline,
        prog: u32,
        vers: u32,
        proc_num: u32,
        arg: &MsgShape,
        res: &MsgShape,
    ) -> Result<Arc<CompiledProc>, PipelineError> {
        let key = (prog, vers, proc_num, ShapeKey::of(pipeline, arg, res));
        let slot = {
            let mut guard = self.map.lock().expect("cache lock");
            let (map, tick) = &mut *guard;
            *tick += 1;
            let now = *tick;
            let slot = {
                let entry = map.entry(key.clone()).or_insert_with(|| Entry {
                    slot: Slot::default(),
                    last_used: now,
                });
                entry.last_used = now;
                entry.slot.clone()
            };
            if map.len() > self.cap {
                // Over the bound (the insertion above was a new context):
                // drop the least recently used entry other than the one
                // just touched. An entry mid-compile keeps its slot alive
                // through the compiling thread's clone; only the cache's
                // reference is discarded.
                if let Some(victim) = map
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                {
                    map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            slot
        };
        let mut slot = slot.lock().expect("slot lock");
        if let Some(hit) = slot.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        let compiled =
            Arc::new(pipeline.build_from_shapes(prog, vers, proc_num, arg.clone(), res.clone())?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        *slot = Some(compiled.clone());
        Ok(compiled)
    }

    /// [`StubCache::get_or_compile`] from IDL source: resolves the target
    /// and shapes (cheap — no Tempo run), then consults the cache.
    pub fn get_or_compile_idl(
        &self,
        pipeline: &ProcPipeline,
        idl: &str,
        program: Option<&str>,
        proc_num: u32,
    ) -> Result<Arc<CompiledProc>, PipelineError> {
        let ((prog, vers, proc_num), arg, res) = pipeline.resolve_shapes(idl, program, proc_num)?;
        self.get_or_compile(pipeline, prog, vers, proc_num, &arg, &res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDL: &str = r#"
        const MAXARR = 2000;
        struct int_arr { int arr<MAXARR>; };
        program ARRAYPROG {
            version ARRAYVERS { int_arr ECHO(int_arr) = 1; } = 1;
        } = 0x20000101;
    "#;

    #[test]
    fn same_context_compiles_once() {
        let cache = StubCache::new();
        let p = ProcPipeline::new(40);
        let a = cache.get_or_compile_idl(&p, IDL, None, 1).unwrap();
        let b = cache.get_or_compile_idl(&p, IDL, None, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must return the same compile");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn different_contexts_get_distinct_entries() {
        let cache = StubCache::new();
        let a = cache
            .get_or_compile_idl(&ProcPipeline::new(40), IDL, None, 1)
            .unwrap();
        let b = cache
            .get_or_compile_idl(&ProcPipeline::new(41), IDL, None, 1)
            .unwrap();
        let c = cache
            .get_or_compile_idl(&ProcPipeline::new(40).with_chunk(8), IDL, None, 1)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.client_encode.wire_len, b.client_encode.wire_len - 4);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 3, 3));
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        // The whole point of Arc + Mutex: concurrent clients resolve
        // through one cache; equal contexts still compile exactly once.
        let cache = Arc::new(StubCache::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                let p = ProcPipeline::new(25);
                cache.get_or_compile_idl(&p, IDL, None, 1).unwrap().target
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), (0x2000_0101, 1, 1));
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "one Tempo run for four threads");
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = StubCache::with_capacity(2);
        let a = cache
            .get_or_compile_idl(&ProcPipeline::new(10), IDL, None, 1)
            .unwrap();
        let _b = cache
            .get_or_compile_idl(&ProcPipeline::new(11), IDL, None, 1)
            .unwrap();
        // Touch `a` so `b` becomes the least recently used entry…
        let a2 = cache
            .get_or_compile_idl(&ProcPipeline::new(10), IDL, None, 1)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        // …then a third context must evict `b`, not `a`.
        let _c = cache
            .get_or_compile_idl(&ProcPipeline::new(12), IDL, None, 1)
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.entries, 2, "bounded at capacity");
        assert_eq!(s.evictions, 1);
        // `a` survives (hit); `b` was evicted and recompiles (miss).
        let hits_before = cache.stats().hits;
        cache
            .get_or_compile_idl(&ProcPipeline::new(10), IDL, None, 1)
            .unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1, "a still cached");
        let misses_before = cache.stats().misses;
        cache
            .get_or_compile_idl(&ProcPipeline::new(11), IDL, None, 1)
            .unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1, "b recompiles");
    }

    #[test]
    fn default_capacity_is_bounded() {
        let cache = StubCache::new();
        assert_eq!(cache.capacity(), DEFAULT_STUB_CACHE_ENTRIES);
    }

    #[test]
    fn unsupported_shape_error_propagates() {
        let cache = StubCache::new();
        let idl = r#"
            struct s { string x<8>; };
            program P { version V { s F(s) = 1; } = 1; } = 7;
        "#;
        let err = cache
            .get_or_compile_idl(&ProcPipeline::new(10), idl, None, 1)
            .unwrap_err();
        assert!(matches!(err, PipelineError::UnsupportedShape));
        assert_eq!(cache.stats().entries, 0);
    }
}
