//! Memoization of the Tempo pipeline: one compiled stub set per
//! specialization context.
//!
//! The paper builds one specialized binary per `(procedure, array size)`
//! context (Table 3). At scale — many concurrent services, many clients —
//! the same contexts recur constantly, and re-running
//! binding-time analysis + specialization + compilation per call site
//! would dwarf the marshaling savings. [`StubCache`] keys compiled
//! [`CompiledProc`]s by `(program, version, procedure,` [`ShapeKey`]`)`
//! and hands out [`Arc`]s, so a context is specialized exactly once and
//! shared by every client/server that needs it (the `Arc` + interior
//! `Mutex` make the cache shareable across threads once the dispatch
//! layer goes multi-threaded).
//!
//! The entry bound is enforced **cost-aware** by default: every insert
//! records the compile's duration (deterministic virtual-time model in
//! simulation, wall clock off it — see [`CompileClock`]), every access
//! bumps a recency-decayed hit score, and the evicted entry is the one
//! with the smallest `compile cost × decayed hit rate` weight — cheap to
//! recompile and rarely asked for. Plain LRU remains available through
//! [`EvictionPolicy::Lru`].

use crate::pipeline::{CompiledProc, PipelineError, ProcPipeline};
use specrpc_rpcgen::parser::parse;
use specrpc_rpcgen::stubgen::MsgShape;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The specialization-context identity of a compiled stub set: everything
/// that changes the residual code. Two call sites with equal keys can
/// share one Tempo run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShapeKey {
    /// Pinned length for counted arrays (the per-size context).
    pub pinned_len: usize,
    /// Bounded-unroll chunk (Table 4); `None` = full unrolling.
    pub chunk: Option<usize>,
    /// Target icache budget for the automatic unroll-bound picker —
    /// part of the identity because two pipelines with equal shapes but
    /// different budgets can compile different residuals.
    pub icache_budget: Option<usize>,
    /// Argument message shape.
    pub arg: MsgShape,
    /// Result message shape.
    pub res: MsgShape,
}

impl ShapeKey {
    /// The key for compiling `arg`/`res` under `pipeline`'s context.
    pub fn of(pipeline: &ProcPipeline, arg: &MsgShape, res: &MsgShape) -> ShapeKey {
        ShapeKey {
            pinned_len: pipeline.pinned_len,
            chunk: pipeline.chunk,
            icache_budget: pipeline.icache_budget,
            arg: arg.clone(),
            res: res.clone(),
        }
    }
}

/// How a compile's duration is measured when its entry is filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileClock {
    /// Deterministic virtual-time model (the default): a fixed pipeline
    /// overhead plus per-residual-byte compile work, via
    /// [`modeled_compile_ns`]. Simulated deployments need eviction
    /// decisions — and the reports built on them — to be reproducible.
    Modeled,
    /// Wall clock around the Tempo run, for deployments off the
    /// simulator where the real compile latency is the quantity of
    /// interest.
    Wall,
}

/// Which entry is discarded when the cache is over capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Cost-aware (the default): weight = recorded compile cost × the
    /// recency-decayed hit score; the lightest entry — cheap to
    /// recompile *and* rarely used — goes first. An expensive stub set
    /// survives a burst of one-shot cheap contexts that plain LRU would
    /// let flush it.
    CostAware,
    /// Plain least-recently-used (the original entry-cap behavior),
    /// kept for comparison and for deployments where compile costs are
    /// uniform.
    Lru,
}

/// Number of compile-cost classes eviction accounting distinguishes.
pub const COST_CLASSES: usize = 3;

/// Class boundaries in nanoseconds: below the first bound is "cheap",
/// below the second "moderate", anything above "expensive". The fixed
/// pipeline overhead of [`modeled_compile_ns`] puts every compile at
/// ≥2 ms, so the bounds sit at 2× and 8× that floor.
pub const COST_CLASS_BOUNDS_NS: [u64; COST_CLASSES - 1] = [4_000_000, 16_000_000];

/// The cost class (index into per-class eviction counters) of a compile
/// duration.
pub fn cost_class(compile_ns: u64) -> usize {
    COST_CLASS_BOUNDS_NS
        .iter()
        .position(|&b| compile_ns < b)
        .unwrap_or(COST_CLASSES - 1)
}

/// Deterministic model of one Tempo run's duration: the fixed pipeline
/// work (parse, binding-time analysis, specialization scaffolding) plus
/// compile work proportional to the residual code emitted across the
/// four stubs. The constants are sized so a small scalar procedure costs
/// ~2 ms and a fully unrolled multi-thousand-element context costs tens
/// of milliseconds — the order of magnitude that makes inline compiles
/// on the calling path visibly catastrophic next to a generic round
/// trip.
pub fn modeled_compile_ns(proc_: &CompiledProc) -> u64 {
    const FIXED_NS: u64 = 2_000_000;
    const PER_RESIDUAL_BYTE_NS: u64 = 200;
    let bytes = proc_.client_encode.program.code_size_bytes()
        + proc_.client_decode.program.code_size_bytes()
        + proc_.server_decode.program.code_size_bytes()
        + proc_.server_encode.program.code_size_bytes();
    FIXED_NS + PER_RESIDUAL_BYTE_NS * bytes as u64
}

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (no Tempo run).
    pub hits: u64,
    /// Lookups that ran the full pipeline (or had a compile published
    /// into them — one Tempo run either way).
    pub misses: u64,
    /// Distinct compiled contexts currently held.
    pub entries: usize,
    /// Entries discarded to stay within the cache's capacity (each one a
    /// future re-compile if its context recurs).
    pub evictions: u64,
    /// Evictions split by the victim's compile-cost class
    /// (`[cheap, moderate, expensive]` per [`COST_CLASS_BOUNDS_NS`]) —
    /// under cost-aware eviction the mass should sit in the cheap
    /// classes.
    pub evictions_by_class: [u64; COST_CLASSES],
    /// Total compile time recorded at insert across the cache's
    /// lifetime (evicted entries included) — the same per-entry
    /// measurement eviction weighs.
    pub compile_ns_total: u64,
}

/// Full cache key: `(program, version, procedure,` [`ShapeKey`]`)`.
pub type CacheKey = (u32, u32, u32, ShapeKey);

/// One cache entry: a per-context lock around the compile result, so
/// concurrent requests for the *same* context serialize on their entry
/// (compile exactly once) while different contexts compile in parallel.
type Slot = Arc<Mutex<Option<Arc<CompiledProc>>>>;

/// Default entry capacity: generous next to the paper's Table 3 (one
/// context per procedure × array size) yet a hard bound, so a service
/// fed adversarially varied shapes cannot grow the cache without limit.
pub const DEFAULT_STUB_CACHE_ENTRIES: usize = 256;

/// Per-tick decay of an entry's hit score: an entry untouched for ~100
/// lookups keeps ~13% of its score, so sustained popularity outweighs
/// ancient bursts.
const SCORE_DECAY_PER_TICK: f64 = 0.98;

/// The slot plus the access bookkeeping eviction weighs: last-used tick,
/// recency-decayed hit score, and the compile duration recorded when the
/// slot was filled.
struct Entry {
    slot: Slot,
    last_used: u64,
    score: f64,
    compile_ns: u64,
}

impl Entry {
    /// Fold an access at tick `now` into the decayed hit score.
    fn touch(&mut self, now: u64) {
        let dt = (now - self.last_used).min(4_000) as i32;
        self.score = self.score * SCORE_DECAY_PER_TICK.powi(dt) + 1.0;
        self.last_used = now;
    }

    /// Cost-aware eviction weight at tick `now`: compile cost × decayed
    /// hit score. Entries mid-compile (`compile_ns == 0`) weigh nearly
    /// nothing — discarding the cache's reference never aborts the
    /// compile itself, which holds its own slot clone.
    fn weight(&self, now: u64) -> f64 {
        let dt = (now - self.last_used).min(4_000) as i32;
        self.compile_ns.max(1) as f64 * self.score * SCORE_DECAY_PER_TICK.powi(dt)
    }
}

/// A shape-keyed cache of compiled stub sets, bounded to a fixed number
/// of contexts with cost-aware (or plain LRU) eviction.
pub struct StubCache {
    /// Map + monotone access tick, under one lock.
    map: Mutex<(HashMap<CacheKey, Entry>, u64)>,
    cap: usize,
    policy: EvictionPolicy,
    clock: CompileClock,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    evictions_by_class: [AtomicU64; COST_CLASSES],
    compile_ns_total: AtomicU64,
}

impl Default for StubCache {
    fn default() -> Self {
        StubCache::new()
    }
}

impl StubCache {
    /// An empty cache holding at most [`DEFAULT_STUB_CACHE_ENTRIES`]
    /// contexts.
    pub fn new() -> Self {
        StubCache::with_capacity(DEFAULT_STUB_CACHE_ENTRIES)
    }

    /// An empty cache holding at most `cap` contexts, evicting
    /// cost-aware when an insertion would exceed the bound.
    pub fn with_capacity(cap: usize) -> Self {
        StubCache::with_policy(cap, EvictionPolicy::CostAware)
    }

    /// An empty cache with an explicit eviction policy.
    pub fn with_policy(cap: usize, policy: EvictionPolicy) -> Self {
        assert!(cap > 0, "stub cache needs capacity for at least one entry");
        StubCache {
            map: Mutex::new((HashMap::new(), 0)),
            cap,
            policy,
            clock: CompileClock::Modeled,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evictions_by_class: Default::default(),
            compile_ns_total: AtomicU64::new(0),
        }
    }

    /// Switch how compile durations are measured (default:
    /// [`CompileClock::Modeled`]).
    pub fn with_compile_clock(mut self, clock: CompileClock) -> Self {
        self.clock = clock;
        self
    }

    /// Entry capacity (the eviction bound).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The eviction policy in force.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Hit/miss/entry/eviction/compile-cost counters.
    pub fn stats(&self) -> CacheStats {
        let mut by_class = [0u64; COST_CLASSES];
        for (dst, src) in by_class.iter_mut().zip(&self.evictions_by_class) {
            *dst = src.load(Ordering::Relaxed);
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            // Count only filled slots (a failed compile leaves none).
            entries: self
                .map
                .lock()
                .expect("cache lock")
                .0
                .values()
                .filter(|e| e.slot.lock().expect("slot lock").is_some())
                .count(),
            evictions: self.evictions.load(Ordering::Relaxed),
            evictions_by_class: by_class,
            compile_ns_total: self.compile_ns_total.load(Ordering::Relaxed),
        }
    }

    /// Evict (at most) one entry when the map is over capacity, sparing
    /// the just-touched `keep` key. Under [`EvictionPolicy::CostAware`]
    /// the minimum-weight entry goes; under [`EvictionPolicy::Lru`] the
    /// least recently used. Ties cannot occur: `last_used` ticks are
    /// unique per entry, and the cost-aware comparison falls back to
    /// them, so the victim is deterministic regardless of map iteration
    /// order.
    fn evict_over_cap(&self, map: &mut HashMap<CacheKey, Entry>, now: u64, keep: &CacheKey) {
        if map.len() <= self.cap {
            return;
        }
        let victim = match self.policy {
            EvictionPolicy::Lru => map
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone()),
            EvictionPolicy::CostAware => map
                .iter()
                .filter(|(k, _)| *k != keep)
                .min_by(|a, b| {
                    a.1.weight(now)
                        .total_cmp(&b.1.weight(now))
                        .then_with(|| a.1.last_used.cmp(&b.1.last_used))
                })
                .map(|(k, _)| k.clone()),
        };
        if let Some(victim) = victim {
            let cost = map.remove(&victim).map(|e| e.compile_ns).unwrap_or(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.evictions_by_class[cost_class(cost)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Probe the cache **without compiling**: the filled entry for the
    /// context, or `None` (no entry is created, no miss is charged — the
    /// tiered runtime's promotion policy decides whether a compile gets
    /// queued). A successful peek counts as a hit and refreshes the
    /// entry's recency/score.
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<CompiledProc>> {
        let mut guard = self.map.lock().expect("cache lock");
        let (map, tick) = &mut *guard;
        let entry = map.get_mut(key)?;
        let hit = entry.slot.lock().expect("slot lock").as_ref().cloned()?;
        *tick += 1;
        let now = *tick;
        entry.touch(now);
        drop(guard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(hit)
    }

    /// Publish an externally compiled stub set for `key`, recording the
    /// compile duration the producer measured. This is the atomic
    /// hot-swap point of the adaptive runtime: the entry's slot flips
    /// from empty to filled under its lock, so a caller peeking
    /// mid-publication sees either the old tier (compile still absent)
    /// or the complete new one — never a partial stub set. Counts one
    /// miss (a Tempo run happened, just elsewhere).
    pub fn publish(&self, key: CacheKey, proc_: Arc<CompiledProc>, compile_ns: u64) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.compile_ns_total
            .fetch_add(compile_ns, Ordering::Relaxed);
        let mut guard = self.map.lock().expect("cache lock");
        let (map, tick) = &mut *guard;
        *tick += 1;
        let now = *tick;
        let entry = map.entry(key.clone()).or_insert_with(|| Entry {
            slot: Slot::default(),
            last_used: now,
            score: 0.0,
            compile_ns: 0,
        });
        entry.touch(now);
        entry.compile_ns = compile_ns;
        *entry.slot.lock().expect("slot lock") = Some(proc_);
        self.evict_over_cap(map, now, &key);
    }

    /// Return the compiled stub set for the context, running the Tempo
    /// pipeline only on a miss. The global map lock is held only to find
    /// or create the entry (and evict per policy when over capacity);
    /// the compile itself holds the per-entry lock, so one context is
    /// never specialized twice and unrelated contexts never wait on each
    /// other's compiles. The compile's duration (per the cache's
    /// [`CompileClock`]) is recorded on the entry — the measurement
    /// eviction and reporting share.
    pub fn get_or_compile(
        &self,
        pipeline: &ProcPipeline,
        prog: u32,
        vers: u32,
        proc_num: u32,
        arg: &MsgShape,
        res: &MsgShape,
    ) -> Result<Arc<CompiledProc>, PipelineError> {
        let key = (prog, vers, proc_num, ShapeKey::of(pipeline, arg, res));
        let slot = {
            let mut guard = self.map.lock().expect("cache lock");
            let (map, tick) = &mut *guard;
            *tick += 1;
            let now = *tick;
            let slot = {
                let entry = map.entry(key.clone()).or_insert_with(|| Entry {
                    slot: Slot::default(),
                    last_used: now,
                    score: 0.0,
                    compile_ns: 0,
                });
                entry.touch(now);
                entry.slot.clone()
            };
            // Over the bound (the insertion above was a new context):
            // discard the policy's victim other than the entry just
            // touched. An entry mid-compile keeps its slot alive through
            // the compiling thread's clone; only the cache's reference
            // is dropped.
            self.evict_over_cap(map, now, &key);
            slot
        };
        let compiled = {
            let mut slot = slot.lock().expect("slot lock");
            if let Some(hit) = slot.as_ref() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit.clone());
            }
            let started = Instant::now();
            let compiled = Arc::new(pipeline.build_from_shapes(
                prog,
                vers,
                proc_num,
                arg.clone(),
                res.clone(),
            )?);
            let compile_ns = match self.clock {
                CompileClock::Wall => started.elapsed().as_nanos() as u64,
                CompileClock::Modeled => modeled_compile_ns(&compiled),
            };
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.compile_ns_total
                .fetch_add(compile_ns, Ordering::Relaxed);
            *slot = Some(compiled.clone());
            drop(slot);
            // Stamp the measured cost on the entry (slot lock released
            // first: the lock order is always map → slot). The entry may
            // have been evicted mid-compile; the lifetime total above
            // still counts the run.
            let mut guard = self.map.lock().expect("cache lock");
            if let Some(e) = guard.0.get_mut(&key) {
                e.compile_ns = compile_ns;
            }
            compiled
        };
        Ok(compiled)
    }

    /// [`StubCache::get_or_compile`] from IDL source: resolves the target
    /// and shapes (cheap — no Tempo run), then consults the cache.
    pub fn get_or_compile_idl(
        &self,
        pipeline: &ProcPipeline,
        idl: &str,
        program: Option<&str>,
        proc_num: u32,
    ) -> Result<Arc<CompiledProc>, PipelineError> {
        let ((prog, vers, proc_num), arg, res) = pipeline.resolve_shapes(idl, program, proc_num)?;
        self.get_or_compile(pipeline, prog, vers, proc_num, &arg, &res)
    }

    /// Compile-ahead mode: pre-seed the cache with **every** procedure
    /// of the (named or first) program in `idl` under `pipeline`'s
    /// context — what a service registration runs so the first client
    /// of each procedure already finds a specialized stub set. Returns
    /// how many procedures were seeded; shapes the specializer cannot
    /// pin ([`PipelineError::UnsupportedShape`]) are skipped — they stay
    /// generic-only, which the dispatch layer already handles.
    pub fn compile_ahead_idl(
        &self,
        pipeline: &ProcPipeline,
        idl: &str,
        program: Option<&str>,
    ) -> Result<usize, PipelineError> {
        let file = parse(idl)?;
        let prog = file
            .programs()
            .into_iter()
            .find(|p| program.map(|n| p.name == n).unwrap_or(true))
            .ok_or_else(|| PipelineError::NoSuchProc {
                program: program.unwrap_or("").to_string(),
                proc_num: 0,
            })?
            .clone();
        let mut seeded = 0;
        for vers in prog.versions.first().into_iter() {
            for p in &vers.procs {
                match self.get_or_compile_idl(pipeline, idl, program, p.number) {
                    Ok(_) => seeded += 1,
                    Err(PipelineError::UnsupportedShape) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(seeded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IDL: &str = r#"
        const MAXARR = 2000;
        struct int_arr { int arr<MAXARR>; };
        program ARRAYPROG {
            version ARRAYVERS { int_arr ECHO(int_arr) = 1; } = 1;
        } = 0x20000101;
    "#;

    #[test]
    fn same_context_compiles_once() {
        let cache = StubCache::new();
        let p = ProcPipeline::new(40);
        let a = cache.get_or_compile_idl(&p, IDL, None, 1).unwrap();
        let b = cache.get_or_compile_idl(&p, IDL, None, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must return the same compile");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn different_contexts_get_distinct_entries() {
        let cache = StubCache::new();
        let a = cache
            .get_or_compile_idl(&ProcPipeline::new(40), IDL, None, 1)
            .unwrap();
        let b = cache
            .get_or_compile_idl(&ProcPipeline::new(41), IDL, None, 1)
            .unwrap();
        let c = cache
            .get_or_compile_idl(&ProcPipeline::new(40).with_chunk(8), IDL, None, 1)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.client_encode.wire_len, b.client_encode.wire_len - 4);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 3, 3));
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        // The whole point of Arc + Mutex: concurrent clients resolve
        // through one cache; equal contexts still compile exactly once.
        let cache = Arc::new(StubCache::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                let p = ProcPipeline::new(25);
                cache.get_or_compile_idl(&p, IDL, None, 1).unwrap().target
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), (0x2000_0101, 1, 1));
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "one Tempo run for four threads");
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn capacity_bound_evicts_the_cold_cheap_entry() {
        // Two near-equal compile costs: the score term decides, and the
        // twice-used entry outweighs the once-used one — same victim as
        // plain LRU here, pinned for both policies below.
        let cache = StubCache::with_capacity(2);
        let a = cache
            .get_or_compile_idl(&ProcPipeline::new(10), IDL, None, 1)
            .unwrap();
        let _b = cache
            .get_or_compile_idl(&ProcPipeline::new(11), IDL, None, 1)
            .unwrap();
        // Touch `a` so `b` becomes the coldest entry…
        let a2 = cache
            .get_or_compile_idl(&ProcPipeline::new(10), IDL, None, 1)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        // …then a third context must evict `b`, not `a`.
        let _c = cache
            .get_or_compile_idl(&ProcPipeline::new(12), IDL, None, 1)
            .unwrap();
        let s = cache.stats();
        assert_eq!(s.entries, 2, "bounded at capacity");
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evictions_by_class.iter().sum::<u64>(), 1);
        // `a` survives (hit); `b` was evicted and recompiles (miss).
        let hits_before = cache.stats().hits;
        cache
            .get_or_compile_idl(&ProcPipeline::new(10), IDL, None, 1)
            .unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1, "a still cached");
        let misses_before = cache.stats().misses;
        cache
            .get_or_compile_idl(&ProcPipeline::new(11), IDL, None, 1)
            .unwrap();
        assert_eq!(cache.stats().misses, misses_before + 1, "b recompiles");
    }

    #[test]
    fn lru_policy_preserves_the_original_behavior() {
        let cache = StubCache::with_policy(2, EvictionPolicy::Lru);
        let a = cache
            .get_or_compile_idl(&ProcPipeline::new(10), IDL, None, 1)
            .unwrap();
        let _b = cache
            .get_or_compile_idl(&ProcPipeline::new(11), IDL, None, 1)
            .unwrap();
        let a2 = cache
            .get_or_compile_idl(&ProcPipeline::new(10), IDL, None, 1)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        cache
            .get_or_compile_idl(&ProcPipeline::new(12), IDL, None, 1)
            .unwrap();
        let hits_before = cache.stats().hits;
        cache
            .get_or_compile_idl(&ProcPipeline::new(10), IDL, None, 1)
            .unwrap();
        assert_eq!(cache.stats().hits, hits_before + 1, "a survived LRU");
    }

    #[test]
    fn cost_aware_eviction_spares_the_expensive_entry() {
        // An old, once-used but expensive-to-compile context (a fully
        // unrolled 2000-element stub set) versus a fresher, twice-used
        // cheap one: LRU would evict the old expensive entry; the
        // cost-aware weight keeps it and discards the cheap one, because
        // recompiling it is what actually hurts.
        let cache = StubCache::with_capacity(2);
        let big = cache
            .get_or_compile_idl(&ProcPipeline::new(2000), IDL, None, 1)
            .unwrap();
        assert!(
            modeled_compile_ns(&big)
                > 4 * modeled_compile_ns(
                    &cache
                        .get_or_compile_idl(&ProcPipeline::new(4), IDL, None, 1)
                        .unwrap()
                ),
            "the test needs a real cost gap"
        );
        // Touch the cheap entry so it is strictly more recent and more
        // used than the big one.
        cache
            .get_or_compile_idl(&ProcPipeline::new(4), IDL, None, 1)
            .unwrap();
        // Inserting a third context evicts the cheap entry, not `big`.
        cache
            .get_or_compile_idl(&ProcPipeline::new(5), IDL, None, 1)
            .unwrap();
        let hits_before = cache.stats().hits;
        let big2 = cache
            .get_or_compile_idl(&ProcPipeline::new(2000), IDL, None, 1)
            .unwrap();
        assert!(Arc::ptr_eq(&big, &big2), "expensive entry survived");
        assert_eq!(cache.stats().hits, hits_before + 1);
        // The victim was the cheap context → cheap cost class.
        assert_eq!(cache.stats().evictions_by_class[0], 1);
    }

    #[test]
    fn peek_never_compiles_and_counts_hits_only_on_success() {
        let cache = StubCache::new();
        let p = ProcPipeline::new(16);
        let ((prog, vers, pnum), arg, res) = p.resolve_shapes(IDL, None, 1).unwrap();
        let key = (prog, vers, pnum, ShapeKey::of(&p, &arg, &res));
        assert!(cache.peek(&key).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0), "peek is free");
        let compiled = cache
            .get_or_compile(&p, prog, vers, pnum, &arg, &res)
            .unwrap();
        let peeked = cache.peek(&key).unwrap();
        assert!(Arc::ptr_eq(&compiled, &peeked));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn publish_fills_the_entry_and_records_cost() {
        let cache = StubCache::new();
        let p = ProcPipeline::new(16);
        let ((prog, vers, pnum), arg, res) = p.resolve_shapes(IDL, None, 1).unwrap();
        let key = (prog, vers, pnum, ShapeKey::of(&p, &arg, &res));
        let compiled = Arc::new(
            p.build_from_shapes(prog, vers, pnum, arg.clone(), res.clone())
                .unwrap(),
        );
        cache.publish(key.clone(), compiled.clone(), 7_000_000);
        let got = cache.peek(&key).unwrap();
        assert!(Arc::ptr_eq(&compiled, &got));
        let s = cache.stats();
        assert_eq!((s.misses, s.entries), (1, 1));
        assert_eq!(s.compile_ns_total, 7_000_000);
    }

    #[test]
    fn compile_durations_accumulate_in_stats() {
        let cache = StubCache::new();
        cache
            .get_or_compile_idl(&ProcPipeline::new(8), IDL, None, 1)
            .unwrap();
        let after_one = cache.stats().compile_ns_total;
        assert!(after_one >= 2_000_000, "modeled floor: {after_one}");
        cache
            .get_or_compile_idl(&ProcPipeline::new(9), IDL, None, 1)
            .unwrap();
        assert!(cache.stats().compile_ns_total > after_one);
        // Hits add nothing.
        let t = cache.stats().compile_ns_total;
        cache
            .get_or_compile_idl(&ProcPipeline::new(8), IDL, None, 1)
            .unwrap();
        assert_eq!(cache.stats().compile_ns_total, t);
    }

    #[test]
    fn wall_clock_records_positive_durations() {
        let cache = StubCache::new().with_compile_clock(CompileClock::Wall);
        cache
            .get_or_compile_idl(&ProcPipeline::new(64), IDL, None, 1)
            .unwrap();
        assert!(cache.stats().compile_ns_total > 0);
    }

    #[test]
    fn compile_ahead_seeds_every_supported_procedure() {
        let idl = r#"
            const MAXARR = 100;
            struct int_arr { int arr<MAXARR>; };
            program AHEADPROG {
                version AHEADVERS {
                    int_arr ECHO(int_arr) = 1;
                    int SUM(int_arr) = 2;
                    int PING(int) = 3;
                } = 1;
            } = 0x20000404;
        "#;
        let cache = StubCache::new();
        let seeded = cache
            .compile_ahead_idl(&ProcPipeline::new(10), idl, None)
            .unwrap();
        assert_eq!(seeded, 3);
        let s = cache.stats();
        assert_eq!((s.misses, s.entries), (3, 3));
        // Every registered procedure now hits.
        for pnum in 1..=3 {
            cache
                .get_or_compile_idl(&ProcPipeline::new(10), idl, None, pnum)
                .unwrap();
        }
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn compile_ahead_skips_unsupported_shapes() {
        let idl = r#"
            const MAXARR = 100;
            struct int_arr { int arr<MAXARR>; };
            struct stringy { string x<8>; };
            program MIXEDPROG {
                version MIXEDVERS {
                    int_arr ECHO(int_arr) = 1;
                    stringy NAME(stringy) = 2;
                } = 1;
            } = 0x20000405;
        "#;
        let cache = StubCache::new();
        let seeded = cache
            .compile_ahead_idl(&ProcPipeline::new(10), idl, None)
            .unwrap();
        assert_eq!(seeded, 1, "the string shape stays generic-only");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn cost_classes_partition_the_axis() {
        assert_eq!(cost_class(0), 0);
        assert_eq!(cost_class(3_999_999), 0);
        assert_eq!(cost_class(4_000_000), 1);
        assert_eq!(cost_class(15_999_999), 1);
        assert_eq!(cost_class(16_000_000), 2);
        assert_eq!(cost_class(u64::MAX), 2);
    }

    #[test]
    fn default_capacity_is_bounded() {
        let cache = StubCache::new();
        assert_eq!(cache.capacity(), DEFAULT_STUB_CACHE_ENTRIES);
        assert_eq!(cache.policy(), EvictionPolicy::CostAware);
    }

    #[test]
    fn unsupported_shape_error_propagates() {
        let cache = StubCache::new();
        let idl = r#"
            struct s { string x<8>; };
            program P { version V { s F(s) = 1; } = 1; } = 7;
        "#;
        let err = cache
            .get_or_compile_idl(&ProcPipeline::new(10), idl, None, 1)
            .unwrap_err();
        assert!(matches!(err, PipelineError::UnsupportedShape));
        assert_eq!(cache.stats().entries, 0);
    }
}
