//! The paper's benchmark workload (§5 "The test program"): a remote
//! procedure exchanging integer arrays, "representative of applications
//! that use a network of workstations as large scale multiprocessors".
//!
//! This module packages everything the benchmarks and examples need:
//! the IDL, per-size specialized stub sets (the paper builds one
//! specialized binary per array size — Table 3), generic and specialized
//! marshal-only entry points (Table 1 / Figure 6-1/2/5), and full
//! round-trip drivers over the simulated network (Table 2 /
//! Figure 6-3/4/6) for both transports (UDP datagrams and record-marked
//! TCP).

use crate::cache::StubCache;
use crate::client::{ProcSpec, SpecClient};
use crate::pipeline::{CompiledProc, PipelineError, ProcPipeline};
use crate::service::SpecService;
use specrpc_netsim::net::{Addr, Network, NetworkConfig};
use specrpc_netsim::platform::{Platform, PlatformCosts};
use specrpc_netsim::SimTime;
use specrpc_rpc::error::RpcError;
use specrpc_rpc::msg::CallHeader;
use specrpc_rpc::svc::SvcRegistry;
use specrpc_rpc::{ClntTcp, ClntUdp};
use specrpc_tempo::compile::{run_encode, StubArgs};
use specrpc_xdr::composite::xdr_array;
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::primitives::xdr_int;
use specrpc_xdr::{OpCounts, XdrResult, XdrStream};
use std::sync::Arc;

/// Program number of the echo service.
pub const ECHO_PROG: u32 = 0x2000_0101;
/// Version number.
pub const ECHO_VERS: u32 = 1;
/// Procedure number of `ECHO`.
pub const ECHO_PROC: u32 = 1;
/// Server port in simulations (UDP).
pub const ECHO_PORT: Addr = 2060;
/// Server port for the TCP deployment.
pub const ECHO_TCP_PORT: Addr = 2061;
/// Maximum array size (the paper's largest measured point).
pub const MAX_ARR: usize = 100_000;

/// The interface definition (what the paper feeds `rpcgen`).
pub const ECHO_IDL: &str = r#"
    const MAXARR = 100000;

    struct int_arr {
        int arr<MAXARR>;
    };

    program ARRAYPROG {
        version ARRAYVERS {
            int_arr ECHO(int_arr) = 1;
        } = 1;
    } = 0x20000101;
"#;

/// The array sizes of the paper's tables.
pub const PAPER_SIZES: [usize; 6] = [20, 100, 250, 500, 1000, 2000];

/// Power-of-two unroll bounds swept by the unroll benchmark and the
/// knee detector in `examples/specialization_report.rs` — the same
/// candidate set [`ProcPipeline::with_icache_budget`] picks from, so
/// the measured curve, the modeled knee, and the auto-tuner always
/// cover the same bounds.
pub const UNROLL_SWEEP: [usize; 10] = crate::pipeline::UNROLL_CANDIDATES;

/// The sweep bounds applicable to arrays of `n` integers: a bound only
/// re-rolls element runs of at least `2 × bound` ops, so bounds above
/// `n / 2` compile to the full unroll and are excluded.
pub fn unroll_bounds(n: usize) -> impl Iterator<Item = usize> {
    UNROLL_SWEEP.into_iter().filter(move |&c| 2 * c <= n)
}

/// The [`ProcSpec`] for `ECHO` pinned to arrays of `n` integers.
pub fn echo_spec(n: usize) -> ProcSpec {
    ProcSpec::new(ECHO_IDL, ECHO_PROC).pinned(n)
}

/// The echo specialization pipeline for arrays of `n` integers
/// (optionally with Table 4's bounded unrolling).
pub fn echo_pipeline(n: usize, chunk: Option<usize>) -> ProcPipeline {
    let mut p = ProcPipeline::new(n);
    p.chunk = chunk;
    p
}

/// Build the specialized stub set for arrays of `n` integers.
pub fn build_echo_proc(n: usize, chunk: Option<usize>) -> Result<CompiledProc, PipelineError> {
    echo_pipeline(n, chunk).build_from_idl(ECHO_IDL, None, ECHO_PROC)
}

/// Generic client-side request marshaling (the original Sun path):
/// call header + counted array, all through the layered micro-routines.
/// Returns the number of bytes produced; counts accumulate in the stream.
pub fn generic_encode_request(enc: &mut XdrMem, xid: u32, data: &mut Vec<i32>) -> XdrResult<usize> {
    enc.reset_encode();
    let mut msg = CallHeader::new(xid, ECHO_PROG, ECHO_VERS, ECHO_PROC);
    CallHeader::xdr(enc, &mut msg)?;
    xdr_array(enc, data, MAX_ARR, xdr_int)?;
    Ok(enc.getpos())
}

/// Generic client-side reply unmarshaling.
pub fn generic_decode_reply(reply: &[u8], out: &mut Vec<i32>) -> Result<OpCounts, RpcError> {
    let mut dec = XdrMem::decoder(reply);
    let hdr = specrpc_rpc::msg::ReplyHeader::decode(&mut dec)?;
    if let Some(e) = hdr.to_error() {
        return Err(e);
    }
    xdr_array(&mut dec, out, MAX_ARR, xdr_int)?;
    Ok(*dec.counts())
}

/// Specialized client-side request marshaling: one compiled-stub run.
pub fn specialized_encode_request(
    proc_: &CompiledProc,
    buf: &mut [u8],
    args: &StubArgs,
    counts: &mut OpCounts,
) -> Result<usize, RpcError> {
    match run_encode(&proc_.client_encode.program, buf, args, counts) {
        Ok(_) => Ok(proc_.client_encode.wire_len),
        Err(e) => Err(RpcError::Transport(e.to_string())),
    }
}

/// Marshaling mode under measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The original layered Sun path.
    Generic,
    /// Tempo-specialized compiled stubs.
    Specialized,
}

/// The echo [`SpecService`] (one procedure; fast + generic paths).
pub fn echo_service(proc_: Arc<CompiledProc>) -> SpecService {
    SpecService::new().proc(proc_, |args: &StubArgs| {
        StubArgs::new(vec![], vec![args.arrays[0].clone()])
    })
}

/// Install the echo service on a network over UDP.
pub fn serve_echo(net: &Network, proc_: Arc<CompiledProc>) -> Arc<SvcRegistry> {
    echo_service(proc_).serve_udp(net, ECHO_PORT)
}

/// A ready-to-measure echo deployment on the simulated network (UDP).
pub struct EchoBench {
    /// The network (virtual time observable via `net.now()`).
    pub net: Network,
    /// Specialized client.
    pub spec: SpecClient<ClntUdp>,
    /// Generic client.
    pub generic: ClntUdp,
    /// The shared service registry (path counters).
    pub registry: Arc<SvcRegistry>,
    /// Array size this deployment is specialized for.
    pub n: usize,
    /// Optional CPU cost model: when set, client marshaling work advances
    /// virtual time according to the platform weights (otherwise only
    /// wire and server time are simulated).
    costs: Option<PlatformCosts>,
}

impl EchoBench {
    /// Deploy client + server for arrays of `n` integers.
    pub fn new(n: usize, chunk: Option<usize>, seed: u64) -> Result<EchoBench, PipelineError> {
        Self::deploy(Arc::new(build_echo_proc(n, chunk)?), n, seed)
    }

    /// Deploy like [`EchoBench::new`], resolving stubs through a shared
    /// [`StubCache`] (a second deployment for the same `(n, chunk)` skips
    /// the Tempo run).
    pub fn new_cached(
        n: usize,
        chunk: Option<usize>,
        seed: u64,
        cache: &StubCache,
    ) -> Result<EchoBench, PipelineError> {
        let proc_ =
            cache.get_or_compile_idl(&echo_pipeline(n, chunk), ECHO_IDL, None, ECHO_PROC)?;
        Self::deploy(proc_, n, seed)
    }

    fn deploy(proc_: Arc<CompiledProc>, n: usize, seed: u64) -> Result<EchoBench, PipelineError> {
        let net = Network::new(NetworkConfig::lan(), seed);
        let registry = serve_echo(&net, proc_.clone());
        let generic = ClntUdp::create(&net, 5001, ECHO_PORT, ECHO_PROG, ECHO_VERS);
        // The specialized client shares the registry's wire-buffer pool:
        // reply buffers it recycles come back as the server's next reply
        // images, closing the allocation loop within one deployment.
        let clnt = ClntUdp::create_pooled(
            &net,
            5002,
            ECHO_PORT,
            ECHO_PROG,
            ECHO_VERS,
            registry.pool().clone(),
        );
        let spec = SpecClient::from_parts(clnt, proc_);
        Ok(EchoBench {
            net,
            spec,
            generic,
            registry,
            n,
            costs: None,
        })
    }

    /// Model client CPU time on the given 1997 platform: marshaling op
    /// counts advance the virtual clock.
    pub fn model_cpu(&mut self, platform: Platform) {
        self.costs = Some(platform.costs());
    }

    fn advance_for(&self, before: OpCounts, after: OpCounts) {
        let Some(c) = self.costs else { return };
        let d = after.since(before);
        let ns = c.marshal_ns(&d, 0) - c.marshal_fixed_ns;
        self.net.advance(SimTime::from_nanos(ns.max(0.0) as u64));
    }

    /// One round trip in the given mode; returns the echoed data.
    pub fn round_trip(&mut self, mode: Mode, data: &[i32]) -> Result<Vec<i32>, RpcError> {
        match mode {
            Mode::Specialized => {
                let before = self.spec.counts;
                let args = self.spec.args(vec![], vec![data.to_vec()]);
                let (out, _) = self.spec.call(&args)?;
                let after = self.spec.counts;
                self.advance_for(before, after);
                Ok(out.arrays.into_iter().next().unwrap_or_default())
            }
            Mode::Generic => {
                let before = self.generic.counts;
                let mut out: Vec<i32> = Vec::new();
                let mut input = data.to_vec();
                self.generic.call(
                    ECHO_PROC,
                    &mut |x| xdr_array(x, &mut input, MAX_ARR, xdr_int),
                    &mut |x| xdr_array(x, &mut out, MAX_ARR, xdr_int),
                )?;
                let after = self.generic.counts;
                self.advance_for(before, after);
                Ok(out)
            }
        }
    }

    /// Mean virtual-time per round trip over `iters` calls.
    pub fn timed_round_trips(
        &mut self,
        mode: Mode,
        data: &[i32],
        iters: usize,
    ) -> Result<SimTime, RpcError> {
        let start = self.net.now();
        for _ in 0..iters {
            let out = self.round_trip(mode, data)?;
            debug_assert_eq!(out.len(), data.len());
        }
        let total = self.net.now() - start;
        Ok(SimTime::from_nanos(total.as_nanos() / iters as u64))
    }
}

/// The echo deployment over record-marked TCP: same service registry,
/// same stubs, stream transport (the ROADMAP's TCP scenario).
pub struct TcpEchoBench {
    /// The network.
    pub net: Network,
    /// Specialized client over the stream transport.
    pub spec: SpecClient<ClntTcp>,
    /// Generic client.
    pub generic: ClntTcp,
    /// The shared service registry (path counters).
    pub registry: Arc<SvcRegistry>,
    /// Array size this deployment is specialized for.
    pub n: usize,
}

impl TcpEchoBench {
    /// Deploy client + server for arrays of `n` integers over TCP.
    pub fn new(n: usize, chunk: Option<usize>, seed: u64) -> Result<TcpEchoBench, PipelineError> {
        let proc_ = Arc::new(build_echo_proc(n, chunk)?);
        let net = Network::new(NetworkConfig::lan(), seed);
        let registry = echo_service(proc_.clone()).serve_tcp(&net, ECHO_TCP_PORT);
        let generic = ClntTcp::create(&net, ECHO_TCP_PORT, ECHO_PROG, ECHO_VERS)
            .map_err(|e| PipelineError::Deploy(e.to_string()))?;
        let clnt = ClntTcp::create_pooled(
            &net,
            ECHO_TCP_PORT,
            ECHO_PROG,
            ECHO_VERS,
            registry.pool().clone(),
        )
        .map_err(|e| PipelineError::Deploy(e.to_string()))?;
        let spec = SpecClient::from_parts(clnt, proc_);
        Ok(TcpEchoBench {
            net,
            spec,
            generic,
            registry,
            n,
        })
    }

    /// One round trip in the given mode; returns the echoed data.
    pub fn round_trip(&mut self, mode: Mode, data: &[i32]) -> Result<Vec<i32>, RpcError> {
        match mode {
            Mode::Specialized => {
                let args = self.spec.args(vec![], vec![data.to_vec()]);
                let (out, _) = self.spec.call(&args)?;
                Ok(out.arrays.into_iter().next().unwrap_or_default())
            }
            Mode::Generic => {
                let mut out: Vec<i32> = Vec::new();
                let mut input = data.to_vec();
                self.generic.call(
                    ECHO_PROC,
                    &mut |x| xdr_array(x, &mut input, MAX_ARR, xdr_int),
                    &mut |x| xdr_array(x, &mut out, MAX_ARR, xdr_int),
                )?;
                Ok(out)
            }
        }
    }
}

/// The echo deployment on the event-driven serving core, driven through
/// batched pipelined calls — what the `batched` criterion scenario
/// measures. The reactor worker(s) process requests off the driving
/// thread, so with a batch in flight the server's decode → handler →
/// encode work overlaps the client's own marshaling and reply decoding;
/// argument and result slots are prebuilt and reused, keeping the
/// steady-state batch on the allocation-free lane.
pub struct BatchEchoBench {
    /// The network.
    pub net: Network,
    /// Specialized client (pool shared with the serving side).
    pub spec: SpecClient<ClntUdp>,
    /// The event-driven service (registry + reactor counters).
    pub service: crate::service::EventService,
    /// Array size this deployment is specialized for.
    pub n: usize,
    /// Calls per batch.
    pub batch: usize,
    args: Vec<StubArgs>,
    outs: Vec<StubArgs>,
    expect: Vec<i32>,
}

impl BatchEchoBench {
    /// Deploy client + event-served echo for arrays of `n` integers,
    /// issuing `batch` pipelined calls per [`BatchEchoBench::round_trips`]
    /// on a reactor of `workers` threads.
    pub fn new(
        n: usize,
        batch: usize,
        workers: usize,
        seed: u64,
    ) -> Result<BatchEchoBench, PipelineError> {
        let proc_ = Arc::new(build_echo_proc(n, None)?);
        let net = Network::new(NetworkConfig::lan(), seed);
        // Size the shared pool to the batch: `batch` request datagrams,
        // their replies, and the dup-cache's stored images are all in
        // flight at once — the default cap would overflow (dropping
        // buffers that come back later as allocating misses).
        let pool = Arc::new(specrpc_rpc::BufPool::with_max_slots(3 * batch + 16));
        let registry = Arc::new(specrpc_rpc::SvcRegistry::with_pool(pool));
        echo_service(proc_.clone()).install(&registry);
        let reactor = specrpc_rpc::svc_event::serve_udp_event(
            &net,
            ECHO_PORT,
            registry.clone(),
            workers,
            None,
        );
        let service = crate::service::EventService { registry, reactor };
        let clnt = ClntUdp::create_pooled(
            &net,
            5002,
            ECHO_PORT,
            ECHO_PROG,
            ECHO_VERS,
            service.registry.pool().clone(),
        );
        let spec = SpecClient::from_parts(clnt, proc_);
        let expect = workload(n);
        let args = (0..batch)
            .map(|_| spec.args(vec![], vec![expect.clone()]))
            .collect();
        let outs = (0..batch).map(|_| StubArgs::default()).collect();
        Ok(BatchEchoBench {
            net,
            spec,
            service,
            n,
            batch,
            args,
            outs,
            expect,
        })
    }

    /// One batch of pipelined round trips (the prebuilt arguments, the
    /// reused result slots). Returns the batch size so callers can
    /// amortize measured time per call.
    pub fn round_trips(&mut self) -> Result<usize, RpcError> {
        let paths = self.spec.call_batch_into(&self.args, &mut self.outs)?;
        debug_assert!(paths.iter().all(|p| *p == crate::client::PathUsed::Fast));
        debug_assert!(self.outs.iter().all(|o| o.arrays[0] == self.expect));
        Ok(self.batch)
    }
}

/// Deterministic workload data for size `n` (the paper's arrays of
/// 4-byte integers).
pub fn workload(n: usize) -> Vec<i32> {
    (0..n)
        .map(|i| (i as i32).wrapping_mul(2_654_435_761u32 as i32) ^ 0x5a5a)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_and_specialized_wire_images_match() {
        let n = 64;
        let proc_ = build_echo_proc(n, None).unwrap();
        let mut data = workload(n);

        let mut enc = XdrMem::encoder(1 << 16);
        let len = generic_encode_request(&mut enc, 0xfeed_beef, &mut data).unwrap();

        let args = StubArgs::new(vec![0xfeed_beefu32 as i32], vec![data.clone()]);
        let mut buf = vec![0u8; proc_.client_encode.wire_len];
        let mut counts = OpCounts::new();
        specialized_encode_request(&proc_, &mut buf, &args, &mut counts).unwrap();

        assert_eq!(len, buf.len());
        assert_eq!(&enc.bytes()[..len], buf.as_slice());
    }

    #[test]
    fn round_trip_both_modes() {
        let mut bench = EchoBench::new(50, None, 3).unwrap();
        let data = workload(50);
        let g = bench.round_trip(Mode::Generic, &data).unwrap();
        assert_eq!(g, data);
        let s = bench.round_trip(Mode::Specialized, &data).unwrap();
        assert_eq!(s, data);
        assert_eq!(bench.spec.fast_calls, 1);
        // Both requests hit the server's raw fast path: the generic
        // client's wire image matches the specialized context too, so
        // server-side specialization also benefits generic clients.
        assert_eq!(bench.registry.raw_dispatches(), 2);
    }

    #[test]
    fn tcp_round_trip_both_modes() {
        let mut bench = TcpEchoBench::new(50, None, 3).unwrap();
        let data = workload(50);
        let g = bench.round_trip(Mode::Generic, &data).unwrap();
        assert_eq!(g, data);
        let s = bench.round_trip(Mode::Specialized, &data).unwrap();
        assert_eq!(s, data);
        assert_eq!(bench.spec.fast_calls, 1);
        assert_eq!(bench.registry.raw_dispatches(), 2);
    }

    #[test]
    fn cached_deployments_share_one_compile() {
        let cache = StubCache::new();
        let _a = EchoBench::new_cached(30, None, 1, &cache).unwrap();
        let _b = EchoBench::new_cached(30, None, 2, &cache).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn specialized_marshal_does_less_interpretive_work() {
        let n = 500;
        let proc_ = build_echo_proc(n, None).unwrap();
        let mut data = workload(n);

        let mut enc = XdrMem::encoder(1 << 16);
        generic_encode_request(&mut enc, 1, &mut data).unwrap();
        let g = *enc.counts();

        let args = StubArgs::new(vec![1], vec![data.clone()]);
        let mut buf = vec![0u8; proc_.client_encode.wire_len];
        let mut s = OpCounts::new();
        specialized_encode_request(&proc_, &mut buf, &args, &mut s).unwrap();

        // Same bytes moved...
        assert_eq!(
            g.mem_moves, s.mem_moves,
            "g={} s={}",
            g.mem_moves, s.mem_moves
        );
        // ...but the interpretive events are gone.
        assert_eq!(s.dispatches, 0);
        assert_eq!(s.overflow_checks, 0);
        assert!(g.dispatches >= n as u64);
        assert!(g.overflow_checks >= n as u64);
        // The residual executes about one op per wire word.
        let words = (proc_.client_encode.wire_len / 4) as u64;
        assert!(
            s.stub_ops <= words + 2,
            "stub_ops={} words={words}",
            s.stub_ops
        );
    }

    #[test]
    fn virtual_time_round_trip_faster_specialized() {
        let mut bench = EchoBench::new(200, None, 11).unwrap();
        let data = workload(200);
        let tg = bench.timed_round_trips(Mode::Generic, &data, 5).unwrap();
        let ts = bench
            .timed_round_trips(Mode::Specialized, &data, 5)
            .unwrap();
        // With the default (cost-agnostic) server time model the two are
        // close; specialized must at least not be slower in virtual time.
        assert!(ts <= tg, "spec {ts} vs generic {tg}");
    }

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(workload(10), workload(10));
        assert_eq!(workload(3).len(), 3);
    }

    #[test]
    fn batch_bench_round_trips_and_counts() {
        let mut bench = BatchEchoBench::new(16, 4, 1, 3).unwrap();
        for _ in 0..3 {
            assert_eq!(bench.round_trips().unwrap(), 4);
        }
        assert_eq!(bench.service.total_events(), 12);
        assert_eq!(bench.spec.fast_calls, 12);
        assert_eq!(bench.spec.calls, 12);
    }
}
