//! Checked-in benchmark baselines: capture and diff.
//!
//! The vendored criterion harness writes machine-readable results when
//! `CRITERION_JSON_DIR` is set. This helper turns those into the repo's
//! `BENCH_<target>.json` baselines and compares fresh runs against them,
//! so perf PRs assert "no regression" instead of eyeballing numbers:
//!
//! ```text
//! CRITERION_JSON_DIR=target/bench-json cargo bench     # fresh run
//! cargo run -p specrpc-bench --bin bench_baseline -- diff
//! cargo run -p specrpc-bench --bin bench_baseline -- capture   # re-baseline
//! ```
//!
//! `diff` prints per-benchmark deltas and flags changes beyond the
//! threshold (default ±50% — wall-clock on shared machines is noisy;
//! pass `--threshold <pct>` to tighten). `--strict` exits non-zero on
//! flagged *regressions* and missing benchmarks (improvements beyond the
//! threshold are reported but never fail), for CI use.
//!
//! ## Intentional baseline shifts
//!
//! When a PR changes modeled behavior on purpose (e.g. an honest link
//! model makes `batched/*` virtual-time medians rise), the regression is
//! real but intended. Rather than loosening the threshold for everyone,
//! the PR declares the shift in `BENCH_SHIFTS.json` at the workspace
//! root — an array of `{"target": ..., "label": ..., "reason": ...}`
//! entries. `diff` reports a matching regression as an intentional
//! shift and does not fail strict mode on it. The ledger is **one-shot**:
//! the next `capture` blesses the shifted numbers as the new baselines
//! and deletes the ledger, so a stale entry can never mask a second,
//! unrelated regression on the same row.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The bench targets with checked-in baselines.
const TARGETS: [&str; 9] = [
    "marshal",
    "roundtrip",
    "unroll",
    "ablation",
    "scale",
    "adaptive",
    "congestion",
    "chaos",
    "nfs",
];

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    label: String,
    median_ns: f64,
    mean_ns: f64,
}

/// Parse the fixed JSON shape the vendored criterion emits: an array of
/// flat objects with one string field (`label`) and numeric fields.
fn parse_entries(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('{') {
        let end = rest[start..]
            .find('}')
            .ok_or_else(|| "unterminated object".to_string())?;
        let obj = &rest[start + 1..start + end];
        entries.push(parse_object(obj)?);
        rest = &rest[start + end + 1..];
    }
    Ok(entries)
}

fn parse_object(obj: &str) -> Result<Entry, String> {
    let mut label = None;
    let mut median = None;
    let mut mean = None;
    for field in split_fields(obj) {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("bad field `{field}`"))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "label" => {
                let v = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("label not a string: `{value}`"))?;
                label = Some(v.replace("\\\"", "\"").replace("\\\\", "\\"));
            }
            "median_ns" => median = Some(parse_num(value)?),
            "mean_ns" => mean = Some(parse_num(value)?),
            _ => {} // forward-compatible: ignore unknown numeric fields
        }
    }
    Ok(Entry {
        label: label.ok_or("entry without label")?,
        median_ns: median.ok_or("entry without median_ns")?,
        mean_ns: mean.ok_or("entry without mean_ns")?,
    })
}

/// Split an object body on commas that are not inside a quoted string.
fn split_fields(obj: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let (mut depth_quote, mut escaped, mut start) = (false, false, 0usize);
    for (i, c) in obj.char_indices() {
        match c {
            '\\' if depth_quote => escaped = !escaped,
            '"' if !escaped => depth_quote = !depth_quote,
            ',' if !depth_quote => {
                fields.push(&obj[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    if start < obj.len() {
        fields.push(&obj[start..]);
    }
    fields.retain(|f| !f.trim().is_empty());
    fields
}

/// One declared intentional baseline shift (see the module docs).
#[derive(Debug, Clone)]
struct Shift {
    target: String,
    label: String,
    reason: String,
}

/// Parse `BENCH_SHIFTS.json`: an array of flat objects with the string
/// fields `target`, `label`, and `reason` (same serialization rules as
/// the baseline entries).
fn parse_shifts(text: &str) -> Result<Vec<Shift>, String> {
    let mut shifts = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('{') {
        let end = rest[start..]
            .find('}')
            .ok_or_else(|| "unterminated object".to_string())?;
        let obj = &rest[start + 1..start + end];
        let mut target = None;
        let mut label = None;
        let mut reason = None;
        for field in split_fields(obj) {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| format!("bad field `{field}`"))?;
            let key = key.trim().trim_matches('"');
            let value = value
                .trim()
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("shift field `{key}` not a string"))?
                .replace("\\\"", "\"")
                .replace("\\\\", "\\");
            match key {
                "target" => target = Some(value),
                "label" => label = Some(value),
                "reason" => reason = Some(value),
                _ => {}
            }
        }
        shifts.push(Shift {
            target: target.ok_or("shift without target")?,
            label: label.ok_or("shift without label")?,
            reason: reason.ok_or("shift without reason")?,
        });
        rest = &rest[start + end + 1..];
    }
    Ok(shifts)
}

fn shifts_path() -> PathBuf {
    workspace_root().join("BENCH_SHIFTS.json")
}

/// Load the intentional-shift ledger, if one is checked in.
fn load_shifts() -> Result<Vec<Shift>, String> {
    let path = shifts_path();
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_shifts(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn parse_num(s: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .map_err(|e| format!("bad number `{s}`: {e}"))
}

fn workspace_root() -> PathBuf {
    // crates/bench → workspace root is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    root.canonicalize().unwrap_or(root)
}

fn fresh_path(target: &str) -> PathBuf {
    workspace_root()
        .join("target/bench-json")
        .join(format!("{target}.json"))
}

fn baseline_path(target: &str) -> PathBuf {
    workspace_root().join(format!("BENCH_{target}.json"))
}

fn load(path: &Path) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_entries(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn capture() -> Result<(), String> {
    for target in TARGETS {
        let from = fresh_path(target);
        let entries = load(&from)?; // validate before blessing
        let to = baseline_path(target);
        std::fs::copy(&from, &to).map_err(|e| format!("cannot write {}: {e}", to.display()))?;
        println!(
            "captured {:<10} {} benchmarks -> {}",
            target,
            entries.len(),
            to.display()
        );
    }
    // One-shot: blessing new baselines consumes the intentional-shift
    // ledger — the shifts are now IN the baselines, and a stale entry
    // must not mask a future regression on the same row.
    let shifts = load_shifts()?;
    if !shifts.is_empty() {
        std::fs::remove_file(shifts_path())
            .map_err(|e| format!("cannot remove {}: {e}", shifts_path().display()))?;
        println!(
            "consumed {} intentional-shift entr{} ({} deleted)",
            shifts.len(),
            if shifts.len() == 1 { "y" } else { "ies" },
            shifts_path().display()
        );
    }
    Ok(())
}

fn diff(threshold_pct: f64, strict: bool) -> Result<ExitCode, String> {
    let mut flagged = 0usize;
    let mut regressions = 0usize;
    let shifts = load_shifts()?;
    let mut shifts_used = vec![false; shifts.len()];
    for target in TARGETS {
        let baseline = load(&baseline_path(target))?;
        let fresh = load(&fresh_path(target))?;
        println!("== {target} ==");
        for b in &baseline {
            let Some(f) = fresh.iter().find(|f| f.label == b.label) else {
                println!("  {:<44} MISSING from fresh run", b.label);
                flagged += 1;
                regressions += 1;
                continue;
            };
            let delta = (f.median_ns - b.median_ns) / b.median_ns * 100.0;
            let mut shift_reason = None;
            let mark = if delta.abs() > threshold_pct {
                flagged += 1;
                if delta > 0.0 {
                    let declared = shifts
                        .iter()
                        .position(|s| s.target == target && s.label == b.label);
                    if let Some(i) = declared {
                        shifts_used[i] = true;
                        shift_reason = Some(shifts[i].reason.clone());
                        "  <-- intentional shift"
                    } else {
                        regressions += 1;
                        "  <-- REGRESSION"
                    }
                } else {
                    "  <-- improvement"
                }
            } else {
                ""
            };
            println!(
                "  {:<44} {:>12.1} ns -> {:>12.1} ns  {:>+7.1}%{}{}",
                f.label,
                b.median_ns,
                f.median_ns,
                delta,
                mark,
                shift_reason.map(|r| format!(" ({r})")).unwrap_or_default()
            );
        }
        for f in &fresh {
            if !baseline.iter().any(|b| b.label == f.label) {
                println!("  {:<44} NEW (not in baseline)", f.label);
            }
        }
    }
    for (i, used) in shifts_used.iter().enumerate() {
        if !used {
            // A declared shift that matched nothing flagged: either the
            // regression never materialized or the baselines were already
            // recaptured. Surface it so the ledger gets cleaned up.
            println!(
                "\nwarning: unused intentional shift {}/{} ({})",
                shifts[i].target, shifts[i].label, shifts[i].reason
            );
        }
    }
    if flagged > 0 {
        println!(
            "\n{flagged} benchmark(s) beyond ±{threshold_pct}% of baseline \
             ({regressions} regression(s)/missing)"
        );
        if strict && regressions > 0 {
            return Ok(ExitCode::FAILURE);
        }
    } else {
        println!("\nall benchmarks within ±{threshold_pct}% of baseline");
    }
    Ok(ExitCode::SUCCESS)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_baseline <capture|diff> [--threshold <pct>] [--strict]\n\
         \n\
         First produce a fresh machine-readable run:\n\
         \u{20}   CRITERION_JSON_DIR=target/bench-json cargo bench\n\
         then `diff` against the checked-in BENCH_*.json baselines, or\n\
         `capture` to bless the fresh run as the new baselines."
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 50.0;
    let mut strict = false;
    let mut command = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "capture" | "diff" => command = Some(a.clone()),
            "--threshold" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) => threshold = v,
                _ => return usage(),
            },
            "--strict" => strict = true,
            _ => return usage(),
        }
    }
    let result = match command.as_deref() {
        Some("capture") => capture().map(|()| ExitCode::SUCCESS),
        Some("diff") => diff(threshold, strict),
        _ => return usage(),
    };
    result.unwrap_or_else(|e| {
        eprintln!("bench_baseline: {e}");
        ExitCode::FAILURE
    })
}
