//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p specrpc-bench --bin paper_tables [--release]
//! ```
//!
//! Prints Tables 1–4 side by side with the paper's reported values, and
//! the six Figure 6 series. See EXPERIMENTS.md for the recorded output.

use specrpc_bench::*;
use specrpc_netsim::platform::Platform;

fn main() {
    println!("== Reproduction of Muller et al., \"Fast, Optimized Sun RPC Using");
    println!("   Automatic Program Specialization\" — Tables 1-4 and Figure 6 ==\n");
    println!("Op counts are measured from real executions of the generic and");
    println!("specialized marshaling code; platform cost models supply the 1997");
    println!("per-event weights (see DESIGN.md, substitution table).\n");

    let mut fig6: Vec<(String, Vec<(usize, f64)>)> = Vec::new();

    for platform in Platform::all() {
        let t1 = table1(platform);
        println!(
            "{}",
            render_rows(
                &format!("Table 1 — Client marshaling, {}", platform.costs().name),
                &t1,
                &paper_table1(platform),
            )
        );
        fig6.push((
            format!("Fig 6-1/2 marshal {}", platform.label()),
            t1.iter().map(|r| (r.n, r.orig_ms)).collect(),
        ));
        fig6.push((
            format!("Fig 6-5 marshal speedup {}", platform.label()),
            t1.iter().map(|r| (r.n, r.speedup())).collect(),
        ));
        println!();
    }

    for platform in Platform::all() {
        let t2 = table2(platform);
        println!(
            "{}",
            render_rows(
                &format!("Table 2 — RPC round trip, {}", platform.costs().name),
                &t2,
                &paper_table2(platform),
            )
        );
        fig6.push((
            format!("Fig 6-3/4 round trip {}", platform.label()),
            t2.iter().map(|r| (r.n, r.orig_ms)).collect(),
        ));
        fig6.push((
            format!("Fig 6-6 round-trip speedup {}", platform.label()),
            t2.iter().map(|r| (r.n, r.speedup())).collect(),
        ));
        println!();
    }

    println!("Table 3 — Size of the client binaries (bytes)");
    println!(
        "{:>6} | {:>10} {:>12} | {:>12}",
        "n", "generic", "specialized", "paper-spec"
    );
    println!("{}", "-".repeat(50));
    for ((n, g, s), paper) in table3().iter().zip(PAPER_TABLE3_SPEC.iter()) {
        println!("{n:>6} | {g:>10} {s:>12} | {paper:>12}");
    }
    println!("(paper generic client code: 20004 bytes)\n");

    println!("Table 4 — Bounded (250) vs full unrolling, PC/Linux marshaling (ms)");
    println!(
        "{:>6} | {:>10} {:>10} {:>12} | {:>9} {:>9}",
        "n", "orig", "full", "250-chunked", "x(full)", "x(chunk)"
    );
    println!("{}", "-".repeat(66));
    for (n, orig, full, chunked) in table4() {
        println!(
            "{n:>6} | {orig:>10.3} {full:>10.3} {chunked:>12.3} | {:>9.2} {:>9.2}",
            orig / full,
            orig / chunked
        );
    }
    println!("(paper: 500: 0.29/0.11/0.108; 1000: 0.51/0.17/0.15; 2000: 0.97/0.29/0.25)\n");

    for platform in Platform::all() {
        println!(
            "{}",
            render_transport_rows(
                &format!(
                    "Modeled transports — round trip (ms), {}\n\
                     (UDP vs record-marked TCP vs lossy UDP: {:.0}% loss/direction,\n\
                     \u{20}RTO = {:.0}x clean RTT)",
                    platform.costs().name,
                    MODELED_LOSS * 100.0,
                    MODELED_RTO_RTT_MULTIPLE,
                ),
                &transport_table(platform),
            )
        );
    }

    println!(
        "{}",
        render_congestion_rows(
            "Retransmission-strategy study — overloaded burst on the honest\n\
             link (48 clients, drop-tail queue cap 12, rate-limited server;\n\
             deterministic virtual time, see `run_congestion`)",
            &congestion_study(),
        )
    );

    println!(
        "{}",
        render_nfs_rows(
            "Coalescing study — NFS-like mixed workload over the honest\n\
             per-packet link (8 clients, zipf handles, one-way WRITE bursts\n\
             \u{20}sealed by sync COMMITs; deterministic virtual time, see\n\
             \u{20}`run_nfs`)",
            &nfs_study(),
        )
    );

    println!(
        "{}",
        render_chaos_rows(
            "Availability study — mid-run primary crash with one backup\n\
             (8 clients, 24 calls each; deadline 8 ms, 30 ms downtime;\n\
             \u{20}deterministic virtual time, see `run_chaos`)",
            &chaos_study(),
        )
    );

    println!("Figure 6 — series (x = array size)");
    for (name, series) in fig6 {
        let points: Vec<String> = series
            .iter()
            .map(|(n, v)| format!("({n}, {v:.3})"))
            .collect();
        println!("  {name}: {}", points.join(" "));
    }
}
