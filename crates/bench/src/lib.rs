//! Experiment drivers regenerating every table and figure of the paper's
//! evaluation (§5).
//!
//! Method (see DESIGN.md): the operation counts come from **really
//! executing** our generic and specialized marshaling code on the
//! workload; the per-platform cost weights ([`Platform::costs`]) convert
//! those counts into modeled 1997 milliseconds. Absolute values are
//! modeled; the shape (who wins, by what factor, where curves bend) comes
//! from the executed code. `cargo bench` additionally measures real
//! wall-clock time on the host for the same code paths.

use specrpc::echo::{
    build_echo_proc, generic_decode_reply, generic_encode_request, workload, PAPER_SIZES,
};
use specrpc::pipeline::CompiledProc;
use specrpc_netsim::platform::{Platform, PlatformCosts, RoundTripSample};
use specrpc_rpc::msg::{CallHeader, ReplyHeader};
use specrpc_tempo::compile::{run_decode, run_encode, StubArgs};
use specrpc_xdr::composite::xdr_array;
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::primitives::xdr_int;
use specrpc_xdr::{OpCounts, XdrStream};

/// Size of the generic client code in the paper's Table 3 (bytes).
pub const GENERIC_CLIENT_BYTES: usize = 20_004;
/// Modeled fixed size of the specialized client besides the stubs
/// (the "unspecialized generic functions because of error handling",
/// Table 3 discussion).
pub const SPEC_BASE_BYTES: usize = 23_540;

/// One row of Table 1/2: original vs specialized times.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Array size in 4-byte integers.
    pub n: usize,
    /// Original (generic) time in ms.
    pub orig_ms: f64,
    /// Specialized time in ms.
    pub spec_ms: f64,
}

impl Row {
    /// Speedup ratio.
    pub fn speedup(&self) -> f64 {
        self.orig_ms / self.spec_ms
    }
}

/// Counts from really executing the four marshal/unmarshal steps of one
/// echo round trip, per mode.
#[derive(Debug, Clone)]
pub struct MeasuredCounts {
    /// Client request encode.
    pub client_enc: OpCounts,
    /// Server request decode.
    pub server_dec: OpCounts,
    /// Server reply encode.
    pub server_enc: OpCounts,
    /// Client reply decode.
    pub client_dec: OpCounts,
    /// Client argument marshaling only (no call header) — what the
    /// paper's Table 1 micro-benchmark times ("the client marshaling
    /// process", i.e. the stub body).
    pub args_enc: OpCounts,
    /// Request bytes.
    pub request_len: usize,
    /// Reply bytes.
    pub reply_len: usize,
    /// Stub code size (specialized) or generic code size.
    pub code_bytes: usize,
}

/// Execute the generic paths once for size `n` and collect counts.
pub fn measure_generic(n: usize) -> MeasuredCounts {
    let mut data = workload(n);

    // Client encode.
    let mut enc = XdrMem::encoder(1 << 20);
    let request_len = generic_encode_request(&mut enc, 0x1111, &mut data).unwrap();
    let client_enc = *enc.counts();
    let request = enc.bytes().to_vec();

    // Server decode (header + args through the layered path).
    let mut dec = XdrMem::decoder(&request);
    let mut hdr = CallHeader::new(0, 0, 0, 0);
    CallHeader::xdr(&mut dec, &mut hdr).unwrap();
    let mut args: Vec<i32> = Vec::new();
    xdr_array(&mut dec, &mut args, 1 << 20, xdr_int).unwrap();
    let server_dec = *dec.counts();

    // Server encode (reply header + results).
    let mut renc = XdrMem::encoder(1 << 20);
    ReplyHeader::encode_success(&mut renc, 0x1111).unwrap();
    xdr_array(&mut renc, &mut args, 1 << 20, xdr_int).unwrap();
    let server_enc = *renc.counts();
    let reply = renc.bytes().to_vec();

    // Client decode.
    let mut out: Vec<i32> = Vec::new();
    let client_dec = generic_decode_reply(&reply, &mut out).unwrap();
    assert_eq!(out, data);

    // Argument marshaling alone (Table 1's micro-benchmark scope).
    let mut aenc = XdrMem::encoder(1 << 20);
    xdr_array(&mut aenc, &mut data, 1 << 20, xdr_int).unwrap();
    let args_enc = *aenc.counts();

    MeasuredCounts {
        client_enc,
        server_dec,
        server_enc,
        client_dec,
        args_enc,
        request_len,
        reply_len: reply.len(),
        code_bytes: GENERIC_CLIENT_BYTES,
    }
}

/// Execute the specialized paths once for size `n` (optionally chunked)
/// and collect counts.
pub fn measure_specialized(proc_: &CompiledProc, n: usize) -> MeasuredCounts {
    let data = workload(n);

    let args = StubArgs::new(vec![0x1111], vec![data.clone()]);
    let mut request = vec![0u8; proc_.client_encode.wire_len];
    let mut client_enc = OpCounts::new();
    run_encode(
        &proc_.client_encode.program,
        &mut request,
        &args,
        &mut client_enc,
    )
    .unwrap();

    let sd = &proc_.server_decode;
    let mut sargs = StubArgs::new(
        vec![0; sd.layout.scalar_count as usize],
        vec![Vec::new(); sd.layout.array_count as usize],
    );
    let mut server_dec = OpCounts::new();
    let out = run_decode(
        &sd.program,
        &request,
        &mut sargs,
        request.len(),
        &mut server_dec,
    )
    .unwrap();
    assert!(matches!(
        out,
        specrpc_tempo::compile::Outcome::Done { ret: 1, .. }
    ));

    let se = &proc_.server_encode;
    let reply_args = StubArgs::new(vec![0x1111], vec![sargs.arrays[0].clone()]);
    let mut reply = vec![0u8; se.wire_len];
    let mut server_enc = OpCounts::new();
    run_encode(&se.program, &mut reply, &reply_args, &mut server_enc).unwrap();

    let cd = &proc_.client_decode;
    let mut cargs = StubArgs::new(
        vec![0; cd.layout.scalar_count as usize],
        vec![Vec::new(); cd.layout.array_count as usize],
    );
    let mut client_dec = OpCounts::new();
    let out = run_decode(
        &cd.program,
        &reply,
        &mut cargs,
        reply.len(),
        &mut client_dec,
    )
    .unwrap();
    assert!(matches!(
        out,
        specrpc_tempo::compile::Outcome::Done { ret: 1, .. }
    ));
    assert_eq!(cargs.arrays[0], data);

    // Argument marshaling alone: the full stub minus the ten header
    // words (one PutScalar for the xid, nine PutImm) it writes.
    let mut args_enc = client_enc;
    args_enc.stub_ops = args_enc.stub_ops.saturating_sub(10);
    args_enc.mem_moves = args_enc.mem_moves.saturating_sub(40);

    MeasuredCounts {
        client_enc,
        server_dec,
        server_enc,
        client_dec,
        args_enc,
        request_len: request.len(),
        reply_len: reply.len(),
        code_bytes: SPEC_BASE_BYTES - GENERIC_CLIENT_BYTES
            + proc_
                .client_encode
                .program
                .code_size_bytes()
                .max(proc_.client_decode.program.code_size_bytes()),
    }
}

/// Table 1: client marshaling time per platform.
pub fn table1(platform: Platform) -> Vec<Row> {
    let costs = platform.costs();
    PAPER_SIZES
        .iter()
        .map(|&n| {
            let g = measure_generic(n);
            let proc_ = build_echo_proc(n, None).expect("pipeline");
            let s = measure_specialized(&proc_, n);
            Row {
                n,
                orig_ms: costs.marshal_ns(&g.args_enc, g.code_bytes) / 1e6,
                spec_ms: costs.marshal_ns(&s.args_enc, s.code_bytes) / 1e6,
            }
        })
        .collect()
}

/// Table 2: round-trip time per platform.
pub fn table2(platform: Platform) -> Vec<Row> {
    let costs = platform.costs();
    PAPER_SIZES
        .iter()
        .map(|&n| {
            let g = measure_generic(n);
            let proc_ = build_echo_proc(n, None).expect("pipeline");
            let s = measure_specialized(&proc_, n);
            let sample = |m: &MeasuredCounts, specialized: bool| RoundTripSample {
                marshals: vec![
                    (m.client_enc, m.code_bytes),
                    (m.server_dec, m.code_bytes),
                    (m.server_enc, m.code_bytes),
                    (m.client_dec, m.code_bytes),
                ],
                wire_bytes: m.request_len + m.reply_len,
                specialized,
            };
            Row {
                n,
                orig_ms: costs.round_trip_ns(&sample(&g, false)) / 1e6,
                spec_ms: costs.round_trip_ns(&sample(&s, true)) / 1e6,
            }
        })
        .collect()
}

/// Table 3: client code sizes (bytes), generic vs specialized per size.
pub fn table3() -> Vec<(usize, usize, usize)> {
    PAPER_SIZES
        .iter()
        .map(|&n| {
            let proc_ = build_echo_proc(n, None).expect("pipeline");
            let spec = SPEC_BASE_BYTES
                + proc_.client_encode.program.code_size_bytes()
                + proc_.client_decode.program.code_size_bytes();
            (n, GENERIC_CLIENT_BYTES, spec)
        })
        .collect()
}

/// Table 4: full vs 250-bounded unrolling on PC/Linux marshaling.
pub fn table4() -> Vec<(usize, f64, f64, f64)> {
    let costs = Platform::PcLinuxFastEthernet.costs();
    [500usize, 1000, 2000]
        .iter()
        .map(|&n| {
            let g = measure_generic(n);
            let full_proc = build_echo_proc(n, None).expect("pipeline");
            let full = measure_specialized(&full_proc, n);
            let chunk_proc = build_echo_proc(n, Some(250)).expect("pipeline");
            let chunked = measure_specialized(&chunk_proc, n);
            let chunk_code = SPEC_BASE_BYTES - GENERIC_CLIENT_BYTES
                + chunk_proc.client_encode.program.code_size_bytes();
            let orig = costs.marshal_ns(&g.args_enc, g.code_bytes) / 1e6;
            let f = costs.marshal_ns(&full.args_enc, full.code_bytes) / 1e6;
            let c = costs.marshal_ns(&chunked.args_enc, chunk_code) / 1e6;
            (n, orig, f, c)
        })
        .collect()
}

/// Record-mark fragment size of the TCP clients (the `XdrRec` default
/// the transports use — aliased so the modeled record-marking overhead
/// can never drift from what the real stream does).
pub const TCP_FRAGMENT_BYTES: usize = specrpc_xdr::rec::DEFAULT_FRAGMENT_SIZE;

/// Loss probability of the modeled lossy-UDP rows (each direction).
pub const MODELED_LOSS: f64 = 0.05;

/// Retransmission timer of the modeled lossy-UDP rows, as a multiple of
/// the clean round-trip time (an adaptive, RTT-derived RTO à la
/// Jacobson, not the fixed multi-second default of `clntudp_create` —
/// a fixed timer would swamp the table with idle waiting).
pub const MODELED_RTO_RTT_MULTIPLE: f64 = 4.0;

/// Modeled round-trip time over record-marked TCP: the UDP cost plus
/// what the stream framing adds — 4 record-mark bytes per fragment on
/// the wire, one reassembly pass copying each message out of its
/// fragments, and a per-fragment processing event.
pub fn modeled_tcp_round_trip_ns(
    costs: &PlatformCosts,
    sample: &RoundTripSample,
    request_len: usize,
    reply_len: usize,
) -> f64 {
    let frags = |len: usize| len.div_ceil(TCP_FRAGMENT_BYTES).max(1);
    let fragments = frags(request_len) + frags(reply_len);
    let mark_bytes = 4 * fragments;
    let mut marked = sample.clone();
    marked.wire_bytes += mark_bytes;
    costs.round_trip_ns(&marked)
        + (request_len + reply_len) as f64 * costs.mem_byte_ns
        + fragments as f64 * costs.interp_event_ns
}

/// Modeled round-trip time over UDP with per-direction loss probability
/// `loss` and retransmission timer `retry_ns`: the clean cost plus the
/// expected retransmission stalls. A transaction survives when both the
/// request and the reply get through (probability `(1-loss)²`); each
/// failed try costs one full timer before the retry.
pub fn modeled_lossy_udp_round_trip_ns(
    costs: &PlatformCosts,
    sample: &RoundTripSample,
    loss: f64,
    retry_ns: f64,
) -> f64 {
    assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
    let q = (1.0 - loss) * (1.0 - loss);
    costs.round_trip_ns(sample) + (1.0 - q) / q * retry_ns
}

/// One row of the modeled transport-comparison table: round-trip times
/// (ms) for generic and specialized marshaling over clean UDP,
/// record-marked TCP, and lossy UDP with retransmission.
#[derive(Debug, Clone, Copy)]
pub struct TransportRow {
    /// Array size in 4-byte integers.
    pub n: usize,
    /// Clean UDP, generic / specialized (the Table 2 columns).
    pub udp: (f64, f64),
    /// Record-marked TCP, generic / specialized.
    pub tcp: (f64, f64),
    /// Lossy UDP ([`MODELED_LOSS`] per direction,
    /// [`MODELED_RTO_RTT_MULTIPLE`]×RTT timer), generic / specialized.
    pub lossy: (f64, f64),
}

/// The modeled transport table (the ROADMAP's "TCP and lossy-UDP rows"):
/// §5's round trip re-modeled over both transports plus a faulty link,
/// from the same measured op counts as Table 2.
pub fn transport_table(platform: Platform) -> Vec<TransportRow> {
    let costs = platform.costs();
    PAPER_SIZES
        .iter()
        .map(|&n| {
            let g = measure_generic(n);
            let proc_ = build_echo_proc(n, None).expect("pipeline");
            let s = measure_specialized(&proc_, n);
            let sample = |m: &MeasuredCounts, specialized: bool| RoundTripSample {
                marshals: vec![
                    (m.client_enc, m.code_bytes),
                    (m.server_dec, m.code_bytes),
                    (m.server_enc, m.code_bytes),
                    (m.client_dec, m.code_bytes),
                ],
                wire_bytes: m.request_len + m.reply_len,
                specialized,
            };
            let per_mode = |m: &MeasuredCounts, specialized: bool| {
                let sm = sample(m, specialized);
                let udp = costs.round_trip_ns(&sm);
                let tcp = modeled_tcp_round_trip_ns(&costs, &sm, m.request_len, m.reply_len);
                let lossy = modeled_lossy_udp_round_trip_ns(
                    &costs,
                    &sm,
                    MODELED_LOSS,
                    MODELED_RTO_RTT_MULTIPLE * udp,
                );
                (udp / 1e6, tcp / 1e6, lossy / 1e6)
            };
            let (gu, gt, gl) = per_mode(&g, false);
            let (su, st, sl) = per_mode(&s, true);
            TransportRow {
                n,
                udp: (gu, su),
                tcp: (gt, st),
                lossy: (gl, sl),
            }
        })
        .collect()
}

/// Render the modeled transport table.
pub fn render_transport_rows(title: &str, rows: &[TransportRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "n", "udp-orig", "udp-spec", "tcp-orig", "tcp-spec", "loss-orig", "loss-spec"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6} | {:>9.3} {:>9.3} | {:>9.3} {:>9.3} | {:>9.3} {:>9.3}",
            r.n, r.udp.0, r.udp.1, r.tcp.0, r.tcp.1, r.lossy.0, r.lossy.1
        );
    }
    out
}

/// One row of the retransmission-strategy study: one policy from
/// [`specrpc::CongestionConfig::strategies`] driven through the
/// overloaded burst of [`specrpc::run_congestion`] under one fault
/// configuration. All
/// quantities are deterministic virtual-time results, not models — the
/// burst really runs through the honest link.
#[derive(Debug, Clone)]
pub struct CongestionRow {
    /// Fault-matrix column ("clean" or "lossy").
    pub faults: &'static str,
    /// Strategy label ("fixed", "expbackoff", "paced").
    pub strategy: &'static str,
    /// Calls that completed / were abandoned at the retry cap.
    pub completed: u64,
    /// Abandoned calls.
    pub failed: u64,
    /// Spurious + recovery retransmissions per settled call.
    pub retransmits_per_call: f64,
    /// Datagrams dropped tail-first at the bounded receive queues.
    pub queue_drops: u64,
    /// Deepest bounded queue observed.
    pub depth_high_water: u64,
    /// 99th-percentile call latency (ms, virtual).
    pub p99_ms: f64,
    /// Virtual time until the whole burst settled (ms).
    pub settle_ms: f64,
}

/// Run the retransmission-strategy study: the smoke-sized overloaded
/// burst, three strategies × {clean, lossy}. Deterministic — the same
/// rows every run.
pub fn congestion_study() -> Vec<CongestionRow> {
    use specrpc::{run_congestion_matrix, CongestionConfig};
    use specrpc_netsim::FaultConfig;

    let mut rows = Vec::new();
    for (faults_label, faults) in [("clean", FaultConfig::NONE), ("lossy", FaultConfig::LOSSY)] {
        let cfg = CongestionConfig::smoke().with_faults(faults);
        for report in run_congestion_matrix(&cfg).expect("congestion matrix") {
            rows.push(CongestionRow {
                faults: faults_label,
                strategy: report.policy_label(),
                completed: report.completed,
                failed: report.failed,
                retransmits_per_call: report.retransmits_per_call(),
                queue_drops: report.link.queue_drops,
                depth_high_water: report.link.queue_depth_high_water,
                p99_ms: report.latency.p99().as_nanos() as f64 / 1e6,
                settle_ms: report.elapsed.as_nanos() as f64 / 1e6,
            });
        }
    }
    rows
}

/// Render the retransmission-strategy study table.
pub fn render_congestion_rows(title: &str, rows: &[CongestionRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>6} {:>11} | {:>5} {:>6} {:>8} | {:>6} {:>6} | {:>8} {:>9}",
        "faults",
        "strategy",
        "done",
        "failed",
        "rtx/call",
        "drops",
        "depth",
        "p99(ms)",
        "settle(ms)"
    );
    let _ = writeln!(out, "{}", "-".repeat(78));
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>11} | {:>5} {:>6} {:>8.2} | {:>6} {:>6} | {:>8.3} {:>9.3}",
            r.faults,
            r.strategy,
            r.completed,
            r.failed,
            r.retransmits_per_call,
            r.queue_drops,
            r.depth_high_water,
            r.p99_ms,
            r.settle_ms,
        );
    }
    out
}

/// One row of the availability study: one client mode (resilience
/// layer on/off) driven through the mid-run primary crash of
/// [`specrpc::run_chaos`] under one fault configuration. All
/// quantities are deterministic virtual-time results — the crash,
/// restart, and failovers really happen on the simulated wire.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Fault-matrix column ("clean" or "lossy").
    pub faults: &'static str,
    /// Client mode ("failover" or "no-failover").
    pub mode: &'static str,
    /// Availability in basis points (9_967 = 99.67%).
    pub availability_bp: u32,
    /// Calls that completed within the scenario deadline / issued.
    pub within_deadline: u64,
    /// Calls issued.
    pub calls: u64,
    /// Calls that errored outright.
    pub failed: u64,
    /// Crash → first completed post-crash call (ms, virtual).
    pub recovery_ms: f64,
    /// Client retargetings to a backup replica.
    pub failovers: u64,
    /// Circuit-breaker open transitions.
    pub breaker_trips: u64,
    /// Handler executions beyond one per completed call.
    pub extra_executions: u64,
    /// 99th-percentile call latency (ms, virtual).
    pub p99_ms: f64,
}

/// Run the availability study: the smoke-sized crash schedule, two
/// client modes × {clean, lossy}. Deterministic — the same rows every
/// run.
pub fn chaos_study() -> Vec<ChaosRow> {
    use specrpc::{run_chaos_matrix, ChaosConfig};
    use specrpc_netsim::FaultConfig;

    let mut rows = Vec::new();
    for (faults_label, faults) in [("clean", FaultConfig::NONE), ("lossy", FaultConfig::LOSSY)] {
        let cfg = ChaosConfig::smoke().with_faults(faults);
        for report in run_chaos_matrix(&cfg).expect("chaos matrix") {
            rows.push(ChaosRow {
                faults: faults_label,
                mode: report.mode_label(),
                availability_bp: report.availability_bp(),
                within_deadline: report.within_deadline,
                calls: report.calls,
                failed: report.failed,
                recovery_ms: report
                    .recovery
                    .map_or(f64::NAN, |r| r.as_nanos() as f64 / 1e6),
                failovers: report.failovers,
                breaker_trips: report.breaker_trips,
                extra_executions: report.extra_executions,
                p99_ms: report.latency.p99().as_nanos() as f64 / 1e6,
            });
        }
    }
    rows
}

/// Render the availability study table.
pub fn render_chaos_rows(title: &str, rows: &[ChaosRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>6} {:>12} | {:>8} {:>9} {:>6} | {:>8} | {:>5} {:>5} {:>5} | {:>8}",
        "faults",
        "mode",
        "avail",
        "in-ddl",
        "failed",
        "rcvr(ms)",
        "f/o",
        "trips",
        "dups",
        "p99(ms)"
    );
    let _ = writeln!(out, "{}", "-".repeat(86));
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>12} | {:>5}.{:02}% {:>5}/{:<3} {:>6} | {:>8.3} | {:>5} {:>5} {:>5} | {:>8.3}",
            r.faults,
            r.mode,
            r.availability_bp / 100,
            r.availability_bp % 100,
            r.within_deadline,
            r.calls,
            r.failed,
            r.recovery_ms,
            r.failovers,
            r.breaker_trips,
            r.extra_executions,
            r.p99_ms,
        );
    }
    out
}

/// One row of the coalescing study: the NFS-like mixed workload of
/// [`specrpc::run_nfs`] driven under one packing policy over the
/// honest per-packet link. All quantities are deterministic
/// virtual-time results — the envelopes, flushes, and acks really
/// cross the simulated wire.
#[derive(Debug, Clone)]
pub struct NfsRow {
    /// Packing policy ("coalesced" or "per-call").
    pub mode: &'static str,
    /// Total operations issued (sync calls + one-way writes).
    pub ops: u64,
    /// Synchronous round trips.
    pub sync_calls: u64,
    /// One-way WRITEs batched behind them.
    pub oneway_writes: u64,
    /// Datagrams that hit the wire.
    pub datagrams: u64,
    /// MTU fragments those datagrams paid for.
    pub fragments: u64,
    /// Datagrams per operation.
    pub datagrams_per_op: f64,
    /// Envelope flushes forced by MTU pressure.
    pub flushes_mtu: u64,
    /// Envelope flushes sealed by a sync call.
    pub flushes_sync: u64,
    /// 99th-percentile sync-call latency (ms, virtual).
    pub p99_ms: f64,
    /// Amortized virtual time per operation (µs).
    pub amortized_us: f64,
    /// Virtual time until the whole workload settled (ms).
    pub settle_ms: f64,
}

/// Run the coalescing study: the smoke-sized NFS-like mix, coalesced
/// vs one-datagram-per-call. Deterministic — the same rows every run.
pub fn nfs_study() -> Vec<NfsRow> {
    use specrpc::{run_nfs, NfsConfig};

    let mut rows = Vec::new();
    for (mode, cfg) in [
        ("coalesced", NfsConfig::smoke()),
        ("per-call", NfsConfig::smoke().per_call()),
    ] {
        let report = run_nfs(&cfg).expect("nfs run");
        rows.push(NfsRow {
            mode,
            ops: report.ops,
            sync_calls: report.sync_calls,
            oneway_writes: report.oneway_writes,
            datagrams: report.link.datagrams,
            fragments: report.link.fragments,
            datagrams_per_op: report.datagrams_per_op(),
            flushes_mtu: report.coalesce.flushes_mtu,
            flushes_sync: report.coalesce.flushes_sync,
            p99_ms: report.latency.p99().as_nanos() as f64 / 1e6,
            amortized_us: report.amortized_per_op().as_nanos() as f64 / 1e3,
            settle_ms: report.elapsed.as_nanos() as f64 / 1e6,
        });
    }
    rows
}

/// Render the coalescing study table.
pub fn render_nfs_rows(title: &str, rows: &[NfsRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>10} | {:>5} {:>5} {:>7} | {:>6} {:>6} {:>7} | {:>5} {:>5} | {:>8} {:>8} {:>9}",
        "mode",
        "ops",
        "sync",
        "one-way",
        "dgrams",
        "frags",
        "dg/op",
        "f-mtu",
        "f-syn",
        "p99(ms)",
        "amrt(us)",
        "settle(ms)"
    );
    let _ = writeln!(out, "{}", "-".repeat(96));
    for r in rows {
        let _ = writeln!(
            out,
            "{:>10} | {:>5} {:>5} {:>7} | {:>6} {:>6} {:>7.2} | {:>5} {:>5} | {:>8.3} {:>8.1} {:>9.3}",
            r.mode,
            r.ops,
            r.sync_calls,
            r.oneway_writes,
            r.datagrams,
            r.fragments,
            r.datagrams_per_op,
            r.flushes_mtu,
            r.flushes_sync,
            r.p99_ms,
            r.amortized_us,
            r.settle_ms,
        );
    }
    out
}

/// Render a Table-1/2-style table with paper reference values.
pub fn render_rows(title: &str, rows: &[Row], paper: &[(f64, f64)]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>6} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8}",
        "n", "orig(ms)", "spec(ms)", "speedup", "paper-orig", "paper-spec", "paper-x"
    );
    let _ = writeln!(out, "{}", "-".repeat(76));
    for (r, (po, ps)) in rows.iter().zip(paper.iter()) {
        let _ = writeln!(
            out,
            "{:>6} | {:>10.3} {:>10.3} {:>8.2} | {:>10.2} {:>10.2} {:>8.2}",
            r.n,
            r.orig_ms,
            r.spec_ms,
            r.speedup(),
            po,
            ps,
            po / ps
        );
    }
    out
}

/// The paper's Table 1 values `(orig, spec)` in ms.
pub fn paper_table1(platform: Platform) -> [(f64, f64); 6] {
    match platform {
        Platform::IpxSunosAtm => [
            (0.047, 0.017),
            (0.20, 0.057),
            (0.49, 0.13),
            (0.99, 0.30),
            (1.96, 0.62),
            (3.93, 1.38),
        ],
        Platform::PcLinuxFastEthernet => [
            (0.071, 0.063),
            (0.11, 0.069),
            (0.17, 0.08),
            (0.29, 0.11),
            (0.51, 0.17),
            (0.97, 0.29),
        ],
    }
}

/// The paper's Table 2 values `(orig, spec)` in ms.
pub fn paper_table2(platform: Platform) -> [(f64, f64); 6] {
    match platform {
        Platform::IpxSunosAtm => [
            (2.32, 2.13),
            (3.32, 2.74),
            (5.02, 3.60),
            (7.86, 5.23),
            (13.58, 8.82),
            (25.24, 16.35),
        ],
        Platform::PcLinuxFastEthernet => [
            (0.69, 0.66),
            (0.99, 0.87),
            (1.58, 1.25),
            (2.62, 2.01),
            (4.26, 3.17),
            (7.61, 5.68),
        ],
    }
}

/// The paper's Table 3 specialized sizes (bytes).
pub const PAPER_TABLE3_SPEC: [usize; 6] = [24_340, 27_540, 33_540, 43_540, 63_540, 111_348];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_hold_on_both_platforms() {
        // IPX: speedup peaks mid-size and declines at 2000 (Fig 6-5).
        let ipx = table1(Platform::IpxSunosAtm);
        let peak = ipx.iter().map(|r| r.speedup()).fold(0.0, f64::max);
        assert!(peak > 3.0 && peak < 4.5, "peak {peak}");
        assert!(ipx[5].speedup() < peak, "decline at 2000");
        assert!(ipx[0].speedup() < peak, "rise from 20");

        // PC: monotone rise, final ~3-4 (Table 1 column).
        let pc = table1(Platform::PcLinuxFastEthernet);
        for w in pc.windows(2) {
            assert!(w[1].speedup() >= w[0].speedup() * 0.98, "{pc:?}");
        }
        assert!(pc[5].speedup() > 2.8 && pc[5].speedup() < 4.2);
    }

    #[test]
    fn table1_magnitudes_near_paper() {
        for platform in Platform::all() {
            let rows = table1(platform);
            let paper = paper_table1(platform);
            for (r, (po, ps)) in rows.iter().zip(paper.iter()) {
                let eo = (r.orig_ms - po).abs() / po;
                let es = (r.spec_ms - ps).abs() / ps;
                assert!(
                    eo < 0.35,
                    "{platform:?} n={} orig {} vs {po}",
                    r.n,
                    r.orig_ms
                );
                assert!(
                    es < 0.35,
                    "{platform:?} n={} spec {} vs {ps}",
                    r.n,
                    r.spec_ms
                );
            }
        }
    }

    #[test]
    fn table2_speedups_rise_to_plateau() {
        for (platform, lo, hi) in [
            (Platform::IpxSunosAtm, 1.25, 1.85),
            (Platform::PcLinuxFastEthernet, 1.15, 1.75),
        ] {
            let rows = table2(platform);
            assert!(
                rows[0].speedup() > 1.0 && rows[0].speedup() < 1.3,
                "{rows:?}"
            );
            assert!(rows[5].speedup() > rows[0].speedup());
            assert!(
                rows[5].speedup() > lo && rows[5].speedup() < hi,
                "{platform:?} plateau {}",
                rows[5].speedup()
            );
        }
    }

    #[test]
    fn table3_specialized_always_larger_and_linear() {
        let t = table3();
        for (n, g, s) in &t {
            assert!(s > g, "n={n}: specialized {s} must exceed generic {g}");
        }
        // Linear growth: slope between consecutive sizes roughly constant.
        let slope1 = (t[1].2 - t[0].2) as f64 / (t[1].0 - t[0].0) as f64;
        let slope5 = (t[5].2 - t[4].2) as f64 / (t[5].0 - t[4].0) as f64;
        assert!(
            (slope1 - slope5).abs() / slope1 < 0.2,
            "{slope1} vs {slope5}"
        );
    }

    #[test]
    fn table4_chunked_beats_full_at_large_sizes() {
        let t = table4();
        for (n, orig, full, chunked) in &t {
            assert!(full < orig, "n={n}");
            if *n >= 1000 {
                assert!(chunked < full, "n={n}: chunked {chunked} < full {full}");
            }
        }
    }

    #[test]
    fn transport_table_orders_and_shapes_hold() {
        for platform in Platform::all() {
            let rows = transport_table(platform);
            assert_eq!(rows.len(), PAPER_SIZES.len());
            for r in &rows {
                for (udp, tcp, lossy) in
                    [(r.udp.0, r.tcp.0, r.lossy.0), (r.udp.1, r.tcp.1, r.lossy.1)]
                {
                    assert!(
                        tcp > udp,
                        "n={}: record marking must cost ({platform:?})",
                        r.n
                    );
                    assert!(lossy > udp, "n={}: loss must cost ({platform:?})", r.n);
                }
                // Specialization still wins on every transport.
                assert!(r.udp.1 < r.udp.0, "n={}", r.n);
                assert!(r.tcp.1 < r.tcp.0, "n={}", r.n);
                assert!(r.lossy.1 < r.lossy.0, "n={}", r.n);
                // The TCP premium is framing + one reassembly copy — an
                // overhead, not a new order of magnitude.
                assert!(r.tcp.0 < r.udp.0 * 2.0, "n={}: {:?}", r.n, r.tcp);
            }
            // Lossy-UDP rows stay proportional: ~10.8% expected extra
            // tries at 5% loss with a 4×RTT timer → ~1.43× clean UDP.
            let want = 1.0
                + MODELED_RTO_RTT_MULTIPLE * (1.0 - (1.0 - MODELED_LOSS).powi(2))
                    / (1.0 - MODELED_LOSS).powi(2);
            for r in &rows {
                let ratio = r.lossy.0 / r.udp.0;
                assert!(
                    (ratio - want).abs() < 1e-6,
                    "n={}: lossy/udp ratio {ratio} vs {want}",
                    r.n
                );
            }
        }
    }

    #[test]
    fn lossy_model_degenerates_to_clean_at_zero_loss() {
        let costs = Platform::PcLinuxFastEthernet.costs();
        let g = measure_generic(100);
        let sample = RoundTripSample {
            marshals: vec![(g.client_enc, g.code_bytes); 4],
            wire_bytes: g.request_len + g.reply_len,
            specialized: false,
        };
        let clean = costs.round_trip_ns(&sample);
        assert_eq!(
            modeled_lossy_udp_round_trip_ns(&costs, &sample, 0.0, 4.0 * clean),
            clean
        );
    }

    #[test]
    fn render_transport_rows_includes_all_columns() {
        let rows = vec![TransportRow {
            n: 20,
            udp: (1.0, 0.5),
            tcp: (1.2, 0.6),
            lossy: (1.4, 0.7),
        }];
        let text = render_transport_rows("T", &rows);
        for col in ["udp-orig", "tcp-spec", "loss-orig"] {
            assert!(text.contains(col), "{text}");
        }
    }

    #[test]
    fn congestion_study_covers_the_matrix_and_backoff_wins() {
        let rows = congestion_study();
        assert_eq!(rows.len(), 6, "3 strategies x 2 fault columns");
        let find = |f: &str, s: &str| {
            rows.iter()
                .find(|r| r.faults == f && r.strategy == s)
                .unwrap()
        };
        for f in ["clean", "lossy"] {
            let fixed = find(f, "fixed");
            let backoff = find(f, "expbackoff");
            assert!(
                backoff.retransmits_per_call < fixed.retransmits_per_call,
                "{f}: backoff {} vs fixed {}",
                backoff.retransmits_per_call,
                fixed.retransmits_per_call
            );
            for s in ["fixed", "expbackoff", "paced"] {
                let r = find(f, s);
                assert_eq!(r.completed + r.failed, 48, "{f}/{s}: every call settles");
                assert!(r.queue_drops > 0, "{f}/{s}: the burst must overflow");
            }
        }
        let text = render_congestion_rows("T", &rows);
        for col in ["rtx/call", "drops", "settle(ms)", "expbackoff"] {
            assert!(text.contains(col), "{text}");
        }
    }

    #[test]
    fn chaos_study_shows_failover_holding_availability() {
        let rows = chaos_study();
        assert_eq!(rows.len(), 4, "2 modes x 2 fault columns");
        let find = |f: &str, m: &str| rows.iter().find(|r| r.faults == f && r.mode == m).unwrap();
        for f in ["clean", "lossy"] {
            let with = find(f, "failover");
            let without = find(f, "no-failover");
            // The ≥99% availability bound is the crash-only claim; the
            // lossy column stacks random datagram loss on top, where a
            // deadline miss or two is the loss model's doing.
            let floor = if f == "clean" { 9_900 } else { 9_700 };
            assert!(
                with.availability_bp >= floor,
                "{f}: failover availability {} bp under floor {floor}",
                with.availability_bp
            );
            assert!(
                without.availability_bp < with.availability_bp,
                "{f}: classic client must degrade: {} vs {}",
                without.availability_bp,
                with.availability_bp
            );
            assert!(
                with.recovery_ms < without.recovery_ms,
                "{f}: failover recovery {} must beat {}",
                with.recovery_ms,
                without.recovery_ms
            );
            assert_eq!(without.failovers, 0, "{f}: classic clients cannot move");
        }
        let text = render_chaos_rows("T", &rows);
        for col in ["avail", "rcvr(ms)", "trips", "no-failover"] {
            assert!(text.contains(col), "{text}");
        }
    }

    #[test]
    fn nfs_study_shows_coalescing_saving_datagrams_and_time() {
        let rows = nfs_study();
        assert_eq!(rows.len(), 2, "coalesced + per-call");
        let find = |m: &str| rows.iter().find(|r| r.mode == m).unwrap();
        let coalesced = find("coalesced");
        let per_call = find("per-call");
        assert_eq!(
            coalesced.ops, per_call.ops,
            "both policies drive the identical workload"
        );
        assert!(
            coalesced.datagrams + coalesced.oneway_writes / 2 < per_call.datagrams,
            "packing must save most one-way datagrams: {} vs {}",
            coalesced.datagrams,
            per_call.datagrams
        );
        assert!(
            coalesced.settle_ms < per_call.settle_ms,
            "coalescing must win elapsed virtual time: {} vs {} ms",
            coalesced.settle_ms,
            per_call.settle_ms
        );
        let text = render_nfs_rows("T", &rows);
        for col in ["dg/op", "f-mtu", "amrt(us)", "per-call"] {
            assert!(text.contains(col), "{text}");
        }
    }

    #[test]
    fn measured_specialized_moves_same_bytes() {
        let n = 250;
        let g = measure_generic(n);
        let p = build_echo_proc(n, None).unwrap();
        let s = measure_specialized(&p, n);
        assert_eq!(g.request_len, s.request_len);
        assert_eq!(g.reply_len, s.reply_len);
        assert_eq!(g.client_enc.mem_moves, s.client_enc.mem_moves);
        assert_eq!(g.args_enc.mem_moves, s.args_enc.mem_moves);
    }
}
