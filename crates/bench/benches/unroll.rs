//! Table 4 — full unrolling vs bounded unrolling of the specialized
//! marshaling stubs, swept over power-of-two bounds (real wall clock; the
//! modeled instruction-cache numbers and the auto-detected knee come from
//! `paper_tables` / `examples/specialization_report`).
//!
//! The paper probes only {25, 250, full}; the sweep covers 8..4096 so the
//! knee of the curve (where a bigger unroll bound stops paying) is
//! measured rather than guessed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specrpc::echo::{build_echo_proc, unroll_bounds, workload};
use specrpc_tempo::compile::{run_encode, StubArgs};
use specrpc_xdr::OpCounts;
use std::hint::black_box;
use std::time::Duration;

fn bench_unroll(c: &mut Criterion) {
    let mut group = c.benchmark_group("unroll");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for n in [500usize, 1000, 2000] {
        let mut variants: Vec<(String, Option<usize>)> = vec![("full".into(), None)];
        variants.extend(unroll_bounds(n).map(|chunk| (format!("chunk{chunk}"), Some(chunk))));
        for (label, chunk) in variants {
            let proc_ = build_echo_proc(n, chunk).expect("pipeline");
            let args = StubArgs::new(vec![1], vec![workload(n)]);
            let mut buf = vec![0u8; proc_.client_encode.wire_len];
            let mut counts = OpCounts::new();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        run_encode(&proc_.client_encode.program, &mut buf, &args, &mut counts)
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_unroll);
criterion_main!(benches);
