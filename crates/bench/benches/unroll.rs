//! Table 4 — full unrolling vs bounded (250-element) unrolling of the
//! specialized marshaling stubs (real wall clock; the modeled instruction-
//! cache numbers come from `paper_tables`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specrpc::echo::{build_echo_proc, workload};
use specrpc_tempo::compile::{run_encode, StubArgs};
use specrpc_xdr::OpCounts;
use std::hint::black_box;
use std::time::Duration;

fn bench_unroll(c: &mut Criterion) {
    let mut group = c.benchmark_group("unroll");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for n in [500usize, 1000, 2000] {
        for (label, chunk) in [
            ("full", None),
            ("chunk250", Some(250)),
            ("chunk25", Some(25)),
        ] {
            let proc_ = build_echo_proc(n, chunk).expect("pipeline");
            let args = StubArgs::new(vec![1], vec![workload(n)]);
            let mut buf = vec![0u8; proc_.client_encode.wire_len];
            let mut counts = OpCounts::new();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    black_box(
                        run_encode(&proc_.client_encode.program, &mut buf, &args, &mut counts)
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_unroll);
criterion_main!(benches);
