//! NFS-like mixed-procedure study — datagram coalescing and Sun-style
//! one-way batching over a link with an honest per-packet cost,
//! measured coalesced vs one-datagram-per-call.
//!
//! Like the `congestion` and `chaos` groups, every row records
//! **virtual time**: the deterministic simulated duration of the run
//! under that policy. The medians are exact and machine-independent,
//! so the baseline gate flags ANY behavior change in the coalescing
//! envelope, the one-way flush/ack pipeline, or the per-packet cost
//! model — regardless of runner noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specrpc::{run_nfs, NfsConfig};
use std::time::Duration;

fn bench_nfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("nfs");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for (mode, cfg) in [
        ("coalesced", NfsConfig::smoke()),
        ("per-call", NfsConfig::smoke().per_call()),
    ] {
        group.bench_with_input(BenchmarkId::new(mode, "smoke"), &cfg, |b, cfg| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let report = run_nfs(cfg).expect("nfs run");
                    assert_eq!(
                        report.ops,
                        report.sync_calls + report.oneway_writes,
                        "every op settles"
                    );
                    // Virtual time for the whole mixed workload.
                    total += Duration::from_nanos(report.elapsed.as_nanos());
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nfs);
criterion_main!(benches);
