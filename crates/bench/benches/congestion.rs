//! Retransmission-strategy study on the honest link — the overloaded
//! burst of `run_congestion` (shared-wire serialization + bounded
//! drop-tail queues + a rate-limited server), measured per strategy
//! across the fault matrix.
//!
//! Like the `batched` and `scale` groups, every row records **virtual
//! time**: the deterministic simulated duration until the whole burst
//! settles under that policy. The medians are exact and
//! machine-independent, so the baseline gate flags ANY behavior change
//! in the link model, the queue bounds, or the retry policies —
//! regardless of runner noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specrpc::congestion::policy_label;
use specrpc::{run_congestion, CongestionConfig};
use specrpc_netsim::FaultConfig;
use std::time::Duration;

fn bench_congestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("congestion");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for (fault_label, faults) in [("clean", FaultConfig::NONE), ("lossy", FaultConfig::LOSSY)] {
        let base = CongestionConfig::smoke().with_faults(faults);
        for policy in base.strategies() {
            let cfg = base.clone().with_policy(policy);
            group.bench_with_input(
                BenchmarkId::new(policy_label(policy), fault_label),
                &cfg,
                |b, cfg| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let report = run_congestion(cfg).expect("congestion run");
                            assert_eq!(
                                report.completed + report.failed,
                                cfg.clients as u64,
                                "every call must settle"
                            );
                            // Virtual time until the burst settles.
                            total += Duration::from_nanos(report.elapsed.as_nanos());
                        }
                        total
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_congestion);
criterion_main!(benches);
