//! Availability study under the chaos layer — the mid-run primary
//! crash of `run_chaos`, measured per client mode (resilience layer on
//! or off) across the fault matrix.
//!
//! Like the `congestion` group, every row records **virtual time**: the
//! deterministic simulated duration until the run (fault schedule
//! included) finishes under that mode. The medians are exact and
//! machine-independent, so the baseline gate flags ANY behavior change
//! in the chaos schedule, the failover/breaker logic, or the timeout
//! clamps — regardless of runner noise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specrpc::{run_chaos, ChaosConfig};
use specrpc_netsim::FaultConfig;
use std::time::Duration;

fn bench_chaos(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for (fault_label, faults) in [("clean", FaultConfig::NONE), ("lossy", FaultConfig::LOSSY)] {
        let base = ChaosConfig::smoke().with_faults(faults);
        for failover in [true, false] {
            let cfg = base.clone().with_failover(failover);
            let mode = if failover { "failover" } else { "no-failover" };
            group.bench_with_input(BenchmarkId::new(mode, fault_label), &cfg, |b, cfg| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let report = run_chaos(cfg).expect("chaos run");
                        assert_eq!(
                            report.completed + report.failed,
                            report.calls,
                            "every call must settle"
                        );
                        // Virtual time until the schedule plays out.
                        total += Duration::from_nanos(report.elapsed.as_nanos());
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chaos);
criterion_main!(benches);
