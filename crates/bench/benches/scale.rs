//! The open-loop scale scenario as a bench: p99 **virtual-time**
//! latency of the zipf-skewed client population through the sharded
//! serving core, at shard widths 1/2/8 over the same socket set.
//!
//! Like `batched/*`, the recorded quantity is virtual time — wire
//! latency + serialization + modeled server time — so the medians are
//! deterministic and machine-independent: the baseline flags ANY real
//! behavior change in the reactor, the dup cache, or the open-loop
//! driver, regardless of runner noise. The three shard widths must
//! report the *same* p99 (shard count is a parallelism knob, not a
//! semantic one); a divergence between rows is a determinism bug, not
//! a perf delta.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specrpc::{run_scale, ScaleConfig};
use std::hint::black_box;
use std::time::Duration;

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // Hold the socket set fixed (8 sockets) while the shard width
    // varies: the arrival stream depends only on the total port count,
    // so every row measures the same workload through a differently
    // partitioned reactor map.
    let (clients, sockets) = (200usize, 8usize);
    for shards in [1usize, 2, 8] {
        let mut cfg = ScaleConfig::smoke().scaled_to(clients);
        cfg.shards = shards;
        cfg.ports_per_shard = sockets / shards;
        group.bench_with_input(BenchmarkId::new("p99", shards), &shards, |b, _| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let report = black_box(run_scale(&cfg).unwrap());
                    assert_eq!(report.replies, clients as u64, "every endpoint answered");
                    total += Duration::from_nanos(report.latency.p99().as_nanos());
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
