//! Ablation (DESIGN.md §7): four marshaling implementations for the same
//! workload —
//!
//! 1. `interpreted` — the generic IR stub run in the Tempo interpreter
//!    (the table-driven extreme discussed in the paper's related work);
//! 2. `table_driven` — the descriptor-walking marshaler over the generic
//!    micro-layers (Hoschka–Huitema style);
//! 3. `generic` — compiled Rust micro-layers (the faithful Sun baseline);
//! 4. `specialized` — Tempo-specialized compiled stubs.

use criterion::{criterion_group, criterion_main, Criterion};
use specrpc::echo::{build_echo_proc, generic_encode_request, workload};
use specrpc_rpcgen::desc::{xdr_value, TypeDesc, XdrValue};
use specrpc_rpcgen::stubgen::StubKind;
use specrpc_tempo::compile::{run_encode, StubArgs};
use specrpc_tempo::eval::{Evaluator, Place, Value};
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::{OpCounts, XdrStream};
use std::hint::black_box;
use std::time::Duration;

const N: usize = 250;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_marshal_250");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    // 1. Interpreted generic IR stub.
    let gs = specrpc_rpcgen::stubgen::generate_from_shapes(
        0x2000_0101,
        1,
        1,
        specrpc_rpcgen::stubgen::MsgShape {
            fields: vec![specrpc_rpcgen::stubgen::FieldShape::VarIntArray {
                name: "arr".into(),
                pinned_len: N,
                max: 100_000,
            }],
        },
        specrpc_rpcgen::stubgen::MsgShape::default(),
    );
    let _ = StubKind::ClientEncode;
    group.bench_function("interpreted_ir", |b| {
        b.iter(|| {
            let mut ev = Evaluator::new(&gs.program);
            let buf = ev.heap.alloc_bytes(1 << 14);
            let xdr = ev.heap.alloc_struct(&gs.program, gs.ids.xdr_sid);
            for (slot, v) in [(0usize, 0i64), (1, 0), (2, 1 << 14)] {
                ev.heap
                    .write_slot(Place { obj: xdr, slot }, Value::Long(v))
                    .unwrap();
            }
            ev.heap
                .write_slot(Place { obj: xdr, slot: 4 }, Value::BufPtr(buf, 0))
                .unwrap();
            let cmsg = ev.heap.alloc_struct(&gs.program, gs.ids.call_sid);
            let argsp = ev.heap.alloc_struct(&gs.program, gs.arg_sid);
            ev.heap
                .write_slot(
                    Place {
                        obj: argsp,
                        slot: 0,
                    },
                    Value::Long(N as i64),
                )
                .unwrap();
            for i in 0..N {
                ev.heap
                    .write_slot(
                        Place {
                            obj: argsp,
                            slot: 1 + i,
                        },
                        Value::Long(i as i64),
                    )
                    .unwrap();
            }
            let r = ev
                .call(
                    &gs.client_encode.entry,
                    vec![
                        Value::Ref(Place { obj: xdr, slot: 0 }),
                        Value::Ref(Place { obj: cmsg, slot: 0 }),
                        Value::Ref(Place {
                            obj: argsp,
                            slot: 0,
                        }),
                    ],
                )
                .unwrap();
            black_box(r)
        })
    });

    // 2. Table-driven descriptor marshaler.
    let desc = TypeDesc::Struct(vec![(
        "arr".into(),
        TypeDesc::VarArray(Box::new(TypeDesc::Int), 100_000),
    )]);
    let mut val = XdrValue::Struct(vec![XdrValue::Array(
        workload(N).into_iter().map(XdrValue::Int).collect(),
    )]);
    group.bench_function("table_driven", |b| {
        b.iter(|| {
            let mut enc = XdrMem::encoder(1 << 14);
            xdr_value(&mut enc, &desc, &mut val).unwrap();
            black_box(enc.getpos())
        })
    });

    // 3. Generic compiled micro-layers.
    let mut data = workload(N);
    let mut enc = XdrMem::encoder(1 << 14);
    group.bench_function("generic", |b| {
        b.iter(|| black_box(generic_encode_request(&mut enc, 7, &mut data).unwrap()))
    });

    // 4. Specialized compiled stubs.
    let proc_ = build_echo_proc(N, None).expect("pipeline");
    let args = StubArgs::new(vec![7], vec![workload(N)]);
    let mut buf = vec![0u8; proc_.client_encode.wire_len];
    let mut counts = OpCounts::new();
    group.bench_function("specialized", |b| {
        b.iter(|| {
            black_box(
                run_encode(&proc_.client_encode.program, &mut buf, &args, &mut counts).unwrap(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
