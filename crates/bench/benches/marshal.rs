//! Table 1 / Figure 6-1/2/5 — real wall-clock client marshaling:
//! generic layered path vs compiled specialized stubs, per array size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use specrpc::echo::{build_echo_proc, generic_encode_request, workload};
use specrpc_tempo::compile::{run_encode, StubArgs};
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::OpCounts;
use std::hint::black_box;
use std::time::Duration;

fn bench_marshal(c: &mut Criterion) {
    let mut group = c.benchmark_group("marshal");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for n in [20usize, 250, 2000] {
        group.throughput(Throughput::Bytes((4 * n) as u64));

        let mut data = workload(n);
        let mut enc = XdrMem::encoder(1 << 20);
        group.bench_with_input(BenchmarkId::new("generic", n), &n, |b, _| {
            b.iter(|| {
                let len = generic_encode_request(&mut enc, 0x42, &mut data).unwrap();
                black_box(len)
            })
        });

        let proc_ = build_echo_proc(n, None).expect("pipeline");
        let args = StubArgs::new(vec![0x42], vec![workload(n)]);
        let mut buf = vec![0u8; proc_.client_encode.wire_len];
        let mut counts = OpCounts::new();
        group.bench_with_input(BenchmarkId::new("specialized", n), &n, |b, _| {
            b.iter(|| {
                let out =
                    run_encode(&proc_.client_encode.program, &mut buf, &args, &mut counts).unwrap();
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_marshal);
criterion_main!(benches);
