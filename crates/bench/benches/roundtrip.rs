//! Table 2 / Figure 6-3/4/6 — full RPC round trips over the simulated
//! network, generic vs specialized (wall-clock of the deterministic
//! simulation; virtual-time tables come from `paper_tables`), over both
//! transports: UDP datagrams and record-marked TCP (the ROADMAP's TCP
//! scenario, riding the `Transport` trait) — plus the `batched`
//! scenario: pipelined `call_batch` round trips through the
//! event-driven serving core at batch sizes 1/4/16/64, measured per
//! batch so the amortized per-call cost is `time / batch`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specrpc::echo::{BatchEchoBench, EchoBench, Mode, TcpEchoBench};
use std::hint::black_box;
use std::time::Duration;

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("roundtrip");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for n in [20usize, 250, 2000] {
        let data = specrpc::echo::workload(n);
        let mut bench = EchoBench::new(n, None, 42).expect("deploy");
        group.bench_with_input(BenchmarkId::new("generic", n), &n, |b, _| {
            b.iter(|| black_box(bench.round_trip(Mode::Generic, &data).unwrap()))
        });
        let mut bench = EchoBench::new(n, None, 42).expect("deploy");
        group.bench_with_input(BenchmarkId::new("specialized", n), &n, |b, _| {
            b.iter(|| black_box(bench.round_trip(Mode::Specialized, &data).unwrap()))
        });
    }
    group.finish();
}

fn bench_roundtrip_tcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("roundtrip_tcp");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for n in [20usize, 250, 2000] {
        let data = specrpc::echo::workload(n);
        let mut bench = TcpEchoBench::new(n, None, 42).expect("deploy");
        group.bench_with_input(BenchmarkId::new("generic", n), &n, |b, _| {
            b.iter(|| black_box(bench.round_trip(Mode::Generic, &data).unwrap()))
        });
        let mut bench = TcpEchoBench::new(n, None, 42).expect("deploy");
        group.bench_with_input(BenchmarkId::new("specialized", n), &n, |b, _| {
            b.iter(|| black_box(bench.round_trip(Mode::Specialized, &data).unwrap()))
        });
    }
    group.finish();
}

/// The `batched` scenario records **amortized per-call round-trip
/// latency in virtual time** (wire latency + serialization + modeled
/// server time — the quantity the simulator exists to model; the
/// wall-clock medians of the `roundtrip` group measure marshaling CPU
/// cost instead, where there is no wire to amortize). `batched/1` is
/// the single-call round-trip reference in this metric; `batched/16`
/// shows pipelining amortizing the fixed round-trip overhead across the
/// batch exactly as the paper's specialized stubs amortize per-element
/// marshaling overhead. Virtual time is deterministic, so these medians
/// are exact and machine-independent.
fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let n = 2000;
    for batch in [1usize, 4, 16, 64] {
        let mut bench = BatchEchoBench::new(n, batch, 1, 42).expect("deploy");
        group.bench_with_input(BenchmarkId::new(batch.to_string(), n), &n, |b, _| {
            b.iter_custom(|iters| {
                let start = bench.net.now();
                let mut calls = 0u64;
                for _ in 0..iters {
                    calls += black_box(bench.round_trips().unwrap()) as u64;
                }
                let elapsed = bench.net.now() - start;
                // Report amortized per-call latency: total virtual time
                // of the pipelined batches divided by calls completed.
                Duration::from_nanos(elapsed.as_nanos() / calls.max(1)) * iters as u32
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_roundtrip, bench_roundtrip_tcp, bench_batched);
criterion_main!(benches);
