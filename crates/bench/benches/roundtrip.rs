//! Table 2 / Figure 6-3/4/6 — full RPC round trips over the simulated
//! network, generic vs specialized (wall-clock of the deterministic
//! simulation; virtual-time tables come from `paper_tables`), over both
//! transports: UDP datagrams and record-marked TCP (the ROADMAP's TCP
//! scenario, riding the `Transport` trait).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specrpc::echo::{EchoBench, Mode, TcpEchoBench};
use std::hint::black_box;
use std::time::Duration;

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("roundtrip");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for n in [20usize, 250, 2000] {
        let data = specrpc::echo::workload(n);
        let mut bench = EchoBench::new(n, None, 42).expect("deploy");
        group.bench_with_input(BenchmarkId::new("generic", n), &n, |b, _| {
            b.iter(|| black_box(bench.round_trip(Mode::Generic, &data).unwrap()))
        });
        let mut bench = EchoBench::new(n, None, 42).expect("deploy");
        group.bench_with_input(BenchmarkId::new("specialized", n), &n, |b, _| {
            b.iter(|| black_box(bench.round_trip(Mode::Specialized, &data).unwrap()))
        });
    }
    group.finish();
}

fn bench_roundtrip_tcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("roundtrip_tcp");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for n in [20usize, 250, 2000] {
        let data = specrpc::echo::workload(n);
        let mut bench = TcpEchoBench::new(n, None, 42).expect("deploy");
        group.bench_with_input(BenchmarkId::new("generic", n), &n, |b, _| {
            b.iter(|| black_box(bench.round_trip(Mode::Generic, &data).unwrap()))
        });
        let mut bench = TcpEchoBench::new(n, None, 42).expect("deploy");
        group.bench_with_input(BenchmarkId::new("specialized", n), &n, |b, _| {
            b.iter(|| black_box(bench.round_trip(Mode::Specialized, &data).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_roundtrip, bench_roundtrip_tcp);
criterion_main!(benches);
