//! The adaptive specialization scenario as a bench: p99 **virtual-time**
//! latency of the shape-churn run through the tiered runtime, against
//! the always-generic and inline-compile baselines.
//!
//! Like `scale`, the recorded quantity is virtual time — wire latency +
//! modeled marshaling CPU + (for the inline row) the modeled Tempo
//! compile stall — so the medians are deterministic and
//! machine-independent. The rows tell the tiering story:
//!
//! * `p99/generic` — promotion disabled, every call Tier-0: the
//!   interpretive baseline.
//! * `p99/adaptive` — background compiles + hot-swap: steady state must
//!   hold a ≥90% Tier-1 hit rate under churn, and cold calls must stay
//!   within 2× of the generic round trip (the tentpole's acceptance
//!   bars, asserted inside the measurement loop).
//! * `p99/inline_compile` — the pre-adaptive stall: the cold caller pays
//!   the whole compile, which the p99 makes visible.
//! * `cold_p99/adaptive` — the Tier-0 subset of the adaptive run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specrpc::{run_adaptive, AdaptiveScenarioConfig};
use std::hint::black_box;
use std::time::Duration;

fn cfg_small() -> AdaptiveScenarioConfig {
    let mut cfg = AdaptiveScenarioConfig::smoke();
    cfg.rotations = 6;
    cfg.calls_per_rotation = 40;
    cfg
}

fn bench_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let generic = cfg_small().generic_baseline();
    let adaptive = cfg_small();
    let inline = cfg_small().inline_compile();

    // The generic baseline p99, reused by the cold-call bound below.
    let generic_p99 = run_adaptive(&generic).unwrap().latency.p99();

    group.bench_with_input(BenchmarkId::new("p99", "generic"), &(), |b, ()| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let report = black_box(run_adaptive(&generic).unwrap());
                assert_eq!(report.stats.tier1_calls, 0, "baseline never promotes");
                total += Duration::from_nanos(report.latency.p99().as_nanos());
            }
            total
        })
    });

    group.bench_with_input(BenchmarkId::new("p99", "adaptive"), &(), |b, ()| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let report = black_box(run_adaptive(&adaptive).unwrap());
                let rate = report.steady_hit_rate();
                assert!(rate >= 0.9, "steady-state hit rate {rate:.3} under churn");
                let cold = report.cold_latency.p99();
                assert!(
                    cold.as_nanos() <= 2 * generic_p99.as_nanos(),
                    "cold p99 {cold} exceeds 2x generic p99 {generic_p99}"
                );
                total += Duration::from_nanos(report.latency.p99().as_nanos());
            }
            total
        })
    });

    group.bench_with_input(BenchmarkId::new("p99", "inline_compile"), &(), |b, ()| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let report = black_box(run_adaptive(&inline).unwrap());
                total += Duration::from_nanos(report.latency.p99().as_nanos());
            }
            total
        })
    });

    group.bench_with_input(BenchmarkId::new("cold_p99", "adaptive"), &(), |b, ()| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let report = black_box(run_adaptive(&adaptive).unwrap());
                total += Duration::from_nanos(report.cold_latency.p99().as_nanos());
            }
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
