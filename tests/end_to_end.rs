//! Cross-crate integration tests: the full system — IDL → Tempo pipeline
//! → RPC over the simulated network — under normal and faulty conditions.

use specrpc::echo::{workload, EchoBench, Mode};
use specrpc::fast::{FastClient, FastHandler, FastServer};
use specrpc::pipeline::ProcPipeline;
use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_netsim::{FaultConfig, SimTime};
use specrpc_rpc::svc::SvcRegistry;
use specrpc_rpc::svc_udp::serve_udp;
use specrpc_rpc::ClntUdp;
use specrpc_tempo::compile::StubArgs;
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn echo_round_trips_match_across_modes_and_sizes() {
    for n in [1usize, 20, 250, 1000] {
        let mut bench = EchoBench::new(n, None, n as u64).expect("deploy");
        let data = workload(n);
        let g = bench.round_trip(Mode::Generic, &data).expect("generic");
        let s = bench
            .round_trip(Mode::Specialized, &data)
            .expect("specialized");
        assert_eq!(g, data, "n={n}");
        assert_eq!(s, data, "n={n}");
        assert_eq!(bench.fast.fast_calls, 1, "n={n}: fast path used");
    }
}

#[test]
fn specialized_client_survives_lossy_network() {
    // The fast path replaces marshaling, not transaction management:
    // retransmission must still recover from loss/duplication/reordering.
    let n = 64;
    let proc_ = Rc::new(
        ProcPipeline::new(n)
            .build_from_idl(specrpc::echo::ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let net = Network::new(
        NetworkConfig::lan().with_faults(FaultConfig {
            loss: 0.3,
            duplicate: 0.15,
            reorder: 0.2,
        }),
        20_260_612,
    );
    let mut reg = SvcRegistry::new();
    let handler: FastHandler =
        Rc::new(|args: &StubArgs| StubArgs::new(vec![], vec![args.arrays[0].clone()]));
    FastServer::install(&mut reg, proc_.clone(), handler);
    serve_udp(&net, 700, Rc::new(RefCell::new(reg)), None);

    let mut clnt = ClntUdp::create(&net, 5005, 700, 0x2000_0101, 1);
    clnt.retry_timeout = SimTime::from_millis(15);
    clnt.total_timeout = SimTime::from_millis(10_000);
    let mut fast = FastClient::new(clnt, proc_);

    let data = workload(n);
    for round in 0..25 {
        let args = fast.args(vec![], vec![data.clone()]);
        let (out, _) = fast
            .call(&args)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(out.arrays[0], data, "round {round}");
    }
    assert!(
        fast.transport_mut().retransmits > 0,
        "loss must have forced retransmissions"
    );
}

#[test]
fn garbled_reply_falls_back_not_crashes() {
    // A server that corrupts one reply word: the specialized decoder's
    // dynamic guard must reject it and the generic decoder must report a
    // proper protocol error (never a panic, never silent corruption).
    let n = 8;
    let proc_ = Rc::new(
        ProcPipeline::new(n)
            .build_from_idl(specrpc::echo::ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let net = Network::new(NetworkConfig::lan(), 5);
    // Handler that echoes a VALID specialized reply but flips the
    // accept_stat word to SYSTEM_ERR.
    let p2 = proc_.clone();
    net.serve_udp(
        700,
        Box::new(move |req, _from| {
            use specrpc_tempo::compile::{run_decode, run_encode};
            use specrpc_xdr::OpCounts;
            let mut counts = OpCounts::new();
            let sd = &p2.server_decode;
            let mut args = StubArgs::new(
                vec![0; sd.layout.scalar_count as usize],
                vec![Vec::new(); sd.layout.array_count as usize],
            );
            run_decode(&sd.program, req, &mut args, req.len(), &mut counts).ok()?;
            let xid = args.scalars[0];
            let reply_args = StubArgs::new(vec![xid], vec![args.arrays[0].clone()]);
            let mut reply = vec![0u8; p2.server_encode.wire_len];
            run_encode(
                &p2.server_encode.program,
                &mut reply,
                &reply_args,
                &mut counts,
            )
            .ok()?;
            reply[23] = 5; // accept_stat = SYSTEM_ERR
            Some((reply, SimTime::from_micros(20)))
        }),
    );
    let clnt = ClntUdp::create(&net, 5006, 700, 0x2000_0101, 1);
    let mut fast = FastClient::new(clnt, proc_);
    let args = fast.args(vec![], vec![workload(n)]);
    let err = fast.call(&args).unwrap_err();
    assert_eq!(err, specrpc_rpc::RpcError::SystemErr);
    assert_eq!(fast.fallback_calls, 1);
}

#[test]
fn mixed_fleet_interoperates() {
    // One server specialized for 100; clients specialized for 100 (fast),
    // generic clients with 100 (fast path on the server), and generic
    // clients with other sizes (generic fallback) all get correct answers.
    let mut bench = EchoBench::new(100, None, 77).expect("deploy");
    let exact = workload(100);

    let fast_out = bench.round_trip(Mode::Specialized, &exact).expect("fast");
    assert_eq!(fast_out, exact);

    let gen_out = bench
        .round_trip(Mode::Generic, &exact)
        .expect("generic same size");
    assert_eq!(gen_out, exact);

    for other in [1usize, 99, 101, 500] {
        let data = workload(other);
        let out = bench
            .round_trip(Mode::Generic, &data)
            .expect("generic other size");
        assert_eq!(out, data, "size {other}");
    }
    let reg = bench.registry.borrow();
    assert!(reg.raw_fallbacks >= 4, "mismatched sizes fell back");
    assert!(reg.raw_dispatches >= 2, "matching sizes took the fast path");
}

#[test]
fn specialized_and_generic_produce_identical_requests_on_the_wire() {
    // Capture actual datagrams: a mirror server records request bytes.
    let n = 33;
    let proc_ = Rc::new(
        ProcPipeline::new(n)
            .build_from_idl(specrpc::echo::ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let net = Network::new(NetworkConfig::lan(), 5);
    let seen: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(Vec::new()));
    let s2 = seen.clone();
    net.serve_udp(
        700,
        Box::new(move |req, _from| {
            s2.borrow_mut().push(req.to_vec());
            None // never reply; we only inspect requests
        }),
    );

    // Specialized client request.
    let clnt = ClntUdp::create(&net, 5007, 700, 0x2000_0101, 1);
    let mut fast = FastClient::new(clnt, proc_);
    fast.transport_mut().retry_timeout = SimTime::from_millis(5);
    fast.transport_mut().total_timeout = SimTime::from_millis(5);
    let args = fast.args(vec![], vec![workload(n)]);
    let _ = fast.call(&args); // times out; the request was captured

    // Generic client request.
    let mut generic = ClntUdp::create(&net, 5008, 700, 0x2000_0101, 1);
    generic.retry_timeout = SimTime::from_millis(5);
    generic.total_timeout = SimTime::from_millis(5);
    let mut input = workload(n);
    let _ = generic.call(
        1,
        &mut |x| {
            specrpc_xdr::composite::xdr_array(
                x,
                &mut input,
                100_000,
                specrpc_xdr::primitives::xdr_int,
            )
        },
        &mut |_| Ok(()),
    );

    let seen = seen.borrow();
    assert!(seen.len() >= 2);
    let a = &seen[0];
    let b = &seen[seen.len() - 1];
    // Requests differ only in the xid word (different clients).
    assert_eq!(a.len(), b.len());
    assert_eq!(&a[4..], &b[4..], "bytes after the xid must be identical");
}
