//! Cross-crate integration tests: the full system — IDL → Tempo pipeline
//! → RPC over the simulated network — under normal and faulty conditions,
//! through the transport-agnostic `SpecClient`/`SpecService` facade.

use specrpc::echo::{echo_service, workload, EchoBench, Mode};
use specrpc::{PathUsed, ProcPipeline, SpecClient, StubCache};
use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_netsim::{FaultConfig, SimTime};
use specrpc_rpc::ClntUdp;
use specrpc_tempo::compile::StubArgs;
use std::sync::{Arc, Mutex};

#[test]
fn echo_round_trips_match_across_modes_and_sizes() {
    for n in [1usize, 20, 250, 1000] {
        let mut bench = EchoBench::new(n, None, n as u64).expect("deploy");
        let data = workload(n);
        let g = bench.round_trip(Mode::Generic, &data).expect("generic");
        let s = bench
            .round_trip(Mode::Specialized, &data)
            .expect("specialized");
        assert_eq!(g, data, "n={n}");
        assert_eq!(s, data, "n={n}");
        assert_eq!(bench.spec.fast_calls, 1, "n={n}: fast path used");
    }
}

#[test]
fn specialized_client_survives_lossy_network() {
    // The fast path replaces marshaling, not transaction management:
    // retransmission must still recover from loss/duplication/reordering.
    let n = 64;
    let proc_ = Arc::new(
        ProcPipeline::new(n)
            .build_from_idl(specrpc::echo::ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let net = Network::new(
        NetworkConfig::lan().with_faults(FaultConfig {
            loss: 0.3,
            duplicate: 0.15,
            reorder: 0.2,
        }),
        20_260_612,
    );
    echo_service(proc_.clone()).serve_udp(&net, 700);

    let mut clnt = ClntUdp::create(&net, 5005, 700, 0x2000_0101, 1);
    clnt.retry_timeout = SimTime::from_millis(15);
    clnt.total_timeout = SimTime::from_millis(10_000);
    let mut spec = SpecClient::from_parts(clnt, proc_);

    let data = workload(n);
    for round in 0..25 {
        let args = spec.args(vec![], vec![data.clone()]);
        let (out, _) = spec
            .call(&args)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(out.arrays[0], data, "round {round}");
    }
    assert!(
        spec.transport_mut().retransmits > 0,
        "loss must have forced retransmissions"
    );
}

#[test]
fn garbled_reply_falls_back_not_crashes() {
    // A server that corrupts one reply word: the specialized decoder's
    // dynamic guard must reject it and the generic decoder must report a
    // proper protocol error (never a panic, never silent corruption).
    let n = 8;
    let proc_ = Arc::new(
        ProcPipeline::new(n)
            .build_from_idl(specrpc::echo::ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let net = Network::new(NetworkConfig::lan(), 5);
    // Handler that echoes a VALID specialized reply but flips the
    // accept_stat word to SYSTEM_ERR.
    let p2 = proc_.clone();
    net.serve_udp(
        700,
        Box::new(move |req, _from| {
            use specrpc_tempo::compile::{run_decode, run_encode};
            use specrpc_xdr::OpCounts;
            let mut counts = OpCounts::new();
            let sd = &p2.server_decode;
            let mut args = StubArgs::new(
                vec![0; sd.layout.scalar_count as usize],
                vec![Vec::new(); sd.layout.array_count as usize],
            );
            run_decode(&sd.program, req, &mut args, req.len(), &mut counts).ok()?;
            let xid = args.scalars[0];
            let reply_args = StubArgs::new(vec![xid], vec![args.arrays[0].clone()]);
            let mut reply = vec![0u8; p2.server_encode.wire_len];
            run_encode(
                &p2.server_encode.program,
                &mut reply,
                &reply_args,
                &mut counts,
            )
            .ok()?;
            reply[23] = 5; // accept_stat = SYSTEM_ERR
            Some((reply, SimTime::from_micros(20)))
        }),
    );
    let clnt = ClntUdp::create(&net, 5006, 700, 0x2000_0101, 1);
    let mut spec = SpecClient::from_parts(clnt, proc_);
    let args = spec.args(vec![], vec![workload(n)]);
    let err = spec.call(&args).unwrap_err();
    assert_eq!(err, specrpc_rpc::RpcError::SystemErr);
    assert_eq!(spec.fallback_calls, 1);
}

#[test]
fn mixed_fleet_interoperates() {
    // One server specialized for 100; clients specialized for 100 (fast),
    // generic clients with 100 (fast path on the server), and generic
    // clients with other sizes (generic fallback) all get correct answers.
    let mut bench = EchoBench::new(100, None, 77).expect("deploy");
    let exact = workload(100);

    let fast_out = bench.round_trip(Mode::Specialized, &exact).expect("fast");
    assert_eq!(fast_out, exact);

    let gen_out = bench
        .round_trip(Mode::Generic, &exact)
        .expect("generic same size");
    assert_eq!(gen_out, exact);

    for other in [1usize, 99, 101, 500] {
        let data = workload(other);
        let out = bench
            .round_trip(Mode::Generic, &data)
            .expect("generic other size");
        assert_eq!(out, data, "size {other}");
    }
    let reg = &bench.registry;
    assert!(reg.raw_fallbacks() >= 4, "mismatched sizes fell back");
    assert!(
        reg.raw_dispatches() >= 2,
        "matching sizes took the fast path"
    );
}

#[test]
fn stub_cache_reuses_one_compile_across_clients() {
    // The scale scenario the cache exists for: many clients of the same
    // (program, version, procedure, shape) context. The second client
    // must be a cache hit — same Arc, no second Tempo run.
    let n = 120;
    let cache = Arc::new(StubCache::new());
    let net = Network::new(NetworkConfig::lan(), 3);

    let first = SpecClient::builder(ClntUdp::create(&net, 5007, 700, 0x2000_0101, 1))
        .proc(specrpc::echo::echo_spec(n))
        .cache(cache.clone())
        .build()
        .expect("first client");
    echo_service(first.compiled().clone()).serve_udp(&net, 700);

    let mut second = SpecClient::builder(ClntUdp::create(&net, 5008, 700, 0x2000_0101, 1))
        .proc(specrpc::echo::echo_spec(n))
        .cache(cache.clone())
        .build()
        .expect("second client");

    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "exactly one Tempo run");
    assert!(stats.hits > 0, "second client hit the cache");
    assert!(
        Arc::ptr_eq(first.compiled(), second.compiled()),
        "both clients share the same compiled stubs"
    );

    // And the shared stubs actually work on the wire.
    let data = workload(n);
    let args = second.args(vec![], vec![data.clone()]);
    let (out, path) = second.call(&args).expect("call");
    assert_eq!(path, PathUsed::Fast);
    assert_eq!(out.arrays[0], data);

    // A different shape context is a miss, not a collision.
    let third = SpecClient::builder(ClntUdp::create(&net, 5009, 700, 0x2000_0101, 1))
        .proc(specrpc::echo::echo_spec(n + 1))
        .cache(cache.clone())
        .build()
        .expect("third client");
    assert!(!Arc::ptr_eq(first.compiled(), third.compiled()));
    assert_eq!(cache.stats().misses, 2);
}

#[test]
fn specialized_and_generic_produce_identical_requests_on_the_wire() {
    // Capture actual datagrams: a mirror server records request bytes.
    let n = 33;
    let proc_ = Arc::new(
        ProcPipeline::new(n)
            .build_from_idl(specrpc::echo::ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let net = Network::new(NetworkConfig::lan(), 5);
    let seen: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = seen.clone();
    net.serve_udp(
        700,
        Box::new(move |req, _from| {
            s2.lock().unwrap().push(req.to_vec());
            None // never reply; we only inspect requests
        }),
    );

    // Specialized client request.
    let clnt = ClntUdp::create(&net, 5007, 700, 0x2000_0101, 1);
    let mut spec = SpecClient::from_parts(clnt, proc_);
    spec.transport_mut().retry_timeout = SimTime::from_millis(5);
    spec.transport_mut().total_timeout = SimTime::from_millis(5);
    let args = spec.args(vec![], vec![workload(n)]);
    let _ = spec.call(&args); // times out; the request was captured

    // Generic client request.
    let mut generic = ClntUdp::create(&net, 5008, 700, 0x2000_0101, 1);
    generic.retry_timeout = SimTime::from_millis(5);
    generic.total_timeout = SimTime::from_millis(5);
    let mut input = workload(n);
    let _ = generic.call(
        1,
        &mut |x| {
            specrpc_xdr::composite::xdr_array(
                x,
                &mut input,
                100_000,
                specrpc_xdr::primitives::xdr_int,
            )
        },
        &mut |_| Ok(()),
    );

    let seen = seen.lock().unwrap();
    assert!(seen.len() >= 2);
    let a = &seen[0];
    let b = &seen[seen.len() - 1];
    // Requests differ only in the xid word (different clients).
    assert_eq!(a.len(), b.len());
    assert_eq!(&a[4..], &b[4..], "bytes after the xid must be identical");
}
