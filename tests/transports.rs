//! Transport-agnosticism of the facade: the same `SpecClient`/
//! `SpecService` pair, the same compiled stubs, and — crucially — the
//! same §6.2 guard-fallback semantics must hold over retransmitting UDP
//! datagrams and record-marked TCP streams alike.

use specrpc::echo::{workload, ECHO_IDL};
use specrpc::{PathUsed, ProcPipeline, SpecClient, SpecService};
use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_rpc::svc::SvcRegistry;
use specrpc_rpc::{ClntTcp, ClntUdp, Transport};
use specrpc_tempo::compile::StubArgs;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PROG: u32 = 0x2000_0101;
const PORT: u32 = 760;

fn compile(n: usize) -> Arc<specrpc::CompiledProc> {
    Arc::new(
        ProcPipeline::new(n)
            .build_from_idl(ECHO_IDL, None, 1)
            .expect("pipeline"),
    )
}

/// Deploy an echoing service specialized for `server_n` over both
/// transports of one network, with a handler that truncates results to
/// `truncate_to` elements when set. Returns the registry and a counter
/// of handler invocations (§6.2 fallback must not re-run user code).
fn deploy(
    net: &Network,
    server_n: usize,
    truncate_to: Option<usize>,
) -> (Arc<SvcRegistry>, Arc<AtomicU64>) {
    let calls = Arc::new(AtomicU64::new(0));
    let c = calls.clone();
    let proc_ = compile(server_n);
    let service = SpecService::new().proc(proc_, move |args: &StubArgs| {
        c.fetch_add(1, Ordering::Relaxed);
        let data = match truncate_to {
            Some(k) => args.arrays[0][..k.min(args.arrays[0].len())].to_vec(),
            None => args.arrays[0].clone(),
        };
        StubArgs::new(vec![], vec![data])
    });
    let reg = service.into_registry();
    specrpc_rpc::svc_udp::serve_udp(net, PORT, reg.clone(), None);
    specrpc_rpc::svc_tcp::serve_tcp(net, PORT + 1, reg.clone(), None);
    (reg, calls)
}

fn udp_client(net: &Network, n: usize) -> SpecClient<ClntUdp> {
    SpecClient::from_parts(ClntUdp::create(net, 5400, PORT, PROG, 1), compile(n))
}

fn tcp_client(net: &Network, n: usize) -> SpecClient<ClntTcp> {
    SpecClient::from_parts(
        ClntTcp::create(net, PORT + 1, PROG, 1).expect("connect"),
        compile(n),
    )
}

/// A client whose specialization context disagrees with the server's
/// (7 vs 10 elements): the server's inlen guard rejects the request, the
/// generic dispatch answers, and the data still round-trips — with the
/// user handler running exactly once.
fn server_guard_fallback_on<T: Transport>(
    mut client: SpecClient<T>,
    reg: &Arc<SvcRegistry>,
    calls: &Arc<AtomicU64>,
) {
    let data = workload(7);
    let args = client.args(vec![], vec![data.clone()]);
    let (out, _path) = client.call(&args).expect("mismatched call");
    assert_eq!(out.arrays[0], data, "fallback must preserve semantics");
    assert_eq!(reg.raw_fallbacks(), 1, "server guard must fail");
    assert_eq!(reg.generic_dispatches(), 1);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        1,
        "handler must run exactly once"
    );
}

#[test]
fn server_guard_fallback_over_udp() {
    let net = Network::new(NetworkConfig::lan(), 41);
    let (reg, calls) = deploy(&net, 10, None);
    server_guard_fallback_on(udp_client(&net, 7), &reg, &calls);
}

#[test]
fn server_guard_fallback_over_tcp() {
    let net = Network::new(NetworkConfig::lan(), 42);
    let (reg, calls) = deploy(&net, 10, None);
    server_guard_fallback_on(tcp_client(&net, 7), &reg, &calls);
}

/// A handler that returns fewer elements than the reply stub is pinned
/// for: the server's raw encode guard fails, so the reply degrades to
/// the generic encoding (without re-running the handler), and the
/// client's reply guard fails too (generic decode runs). Both §6.2
/// fallbacks fire, the answer is still correct, and the user handler
/// ran exactly once.
fn reply_shape_mismatch_on<T: Transport>(
    mut client: SpecClient<T>,
    reg: &Arc<SvcRegistry>,
    calls: &Arc<AtomicU64>,
) {
    let data = workload(10);
    let args = client.args(vec![], vec![data.clone()]);
    let (out, path) = client.call(&args).expect("truncated call");
    assert_eq!(path, PathUsed::GenericFallback, "client guard must fail");
    assert_eq!(out.arrays[0], &data[..5], "fallback result must be right");
    assert_eq!(client.fallback_calls, 1);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        1,
        "handler must run exactly once"
    );
    // The raw handler answered (with a generically-encoded reply); no
    // second dispatch happened.
    assert_eq!(reg.raw_dispatches(), 1);
    assert_eq!(reg.generic_dispatches(), 0);
}

#[test]
fn reply_shape_mismatch_falls_back_over_udp() {
    let net = Network::new(NetworkConfig::lan(), 43);
    let (reg, calls) = deploy(&net, 10, Some(5));
    reply_shape_mismatch_on(udp_client(&net, 10), &reg, &calls);
}

#[test]
fn reply_shape_mismatch_falls_back_over_tcp() {
    let net = Network::new(NetworkConfig::lan(), 44);
    let (reg, calls) = deploy(&net, 10, Some(5));
    reply_shape_mismatch_on(tcp_client(&net, 10), &reg, &calls);
}

#[test]
fn same_stubs_same_bytes_on_both_transports() {
    // Transport-agnosticism at the byte level: the specialized request
    // image is identical whether it rides a datagram or a record — only
    // the framing differs. Compare the request bytes each server saw.
    let n = 12;
    let net = Network::new(NetworkConfig::lan(), 45);
    let (reg, _calls) = deploy(&net, n, None);
    let data = workload(n);

    let mut udp = udp_client(&net, n);
    let args = udp.args(vec![], vec![data.clone()]);
    let (out, path) = udp.call(&args).expect("udp call");
    assert_eq!(
        (out.arrays[0].clone(), path),
        (data.clone(), PathUsed::Fast)
    );

    let mut tcp = tcp_client(&net, n);
    let args = tcp.args(vec![], vec![data.clone()]);
    let (out, path) = tcp.call(&args).expect("tcp call");
    assert_eq!(
        (out.arrays[0].clone(), path),
        (data.clone(), PathUsed::Fast)
    );

    // Both went down the raw fast path on the shared registry.
    assert_eq!(reg.raw_dispatches(), 2);
    assert_eq!(reg.raw_fallbacks(), 0);
}
