//! Protocol-substrate integration tests: TCP record marking end to end,
//! the portmapper, and record streams over the simulated network.

use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_rpc::clnt_tcp::ClntTcp;
use specrpc_rpc::pmap::{self, Mapping, IPPROTO_TCP, IPPROTO_UDP};
use specrpc_rpc::svc::SvcRegistry;
use specrpc_rpc::svc_tcp::serve_tcp;
use specrpc_rpc::svc_udp::serve_udp;
use specrpc_rpc::ClntUdp;
use specrpc_xdr::composite::xdr_array;
use specrpc_xdr::primitives::xdr_int;
use std::sync::Arc;

const PROG: u32 = 600_000;

fn sum_registry() -> Arc<SvcRegistry> {
    let reg = SvcRegistry::new();
    reg.register(PROG, 1, 1, |args, results| {
        let mut v: Vec<i32> = Vec::new();
        xdr_array(args, &mut v, 1 << 20, xdr_int)?;
        let mut sum: i32 = v.iter().copied().fold(0i32, i32::wrapping_add);
        xdr_int(results, &mut sum)?;
        Ok(())
    });
    Arc::new(reg)
}

#[test]
fn service_discovery_then_call_over_udp_and_tcp() {
    let net = Network::new(NetworkConfig::lan(), 31);
    pmap::start_portmapper(&net);
    let reg = sum_registry();
    serve_udp(&net, 901, reg.clone(), None);
    serve_tcp(&net, 902, reg, None);
    pmap::pmap_set(
        &net,
        6000,
        Mapping {
            prog: PROG,
            vers: 1,
            prot: IPPROTO_UDP,
            port: 901,
        },
    )
    .expect("set udp");
    pmap::pmap_set(
        &net,
        6000,
        Mapping {
            prog: PROG,
            vers: 1,
            prot: IPPROTO_TCP,
            port: 902,
        },
    )
    .expect("set tcp");

    // UDP client via discovered port.
    let port = pmap::pmap_getport(&net, 6001, PROG, 1, IPPROTO_UDP).expect("getport udp");
    let mut uclnt = ClntUdp::create(&net, 6002, port, PROG, 1);
    let mut sum = 0i32;
    uclnt
        .call(
            1,
            &mut |x| {
                let mut v = vec![10, 20, 30];
                xdr_array(x, &mut v, 100, xdr_int)
            },
            &mut |x| xdr_int(x, &mut sum),
        )
        .expect("udp call");
    assert_eq!(sum, 60);

    // TCP client via discovered port.
    let port = pmap::pmap_getport(&net, 6003, PROG, 1, IPPROTO_TCP).expect("getport tcp");
    let mut tclnt = ClntTcp::create(&net, port, PROG, 1).expect("connect");
    let mut sum = 0i32;
    tclnt
        .call(
            1,
            &mut |x| {
                let mut v: Vec<i32> = (1..=100).collect();
                xdr_array(x, &mut v, 1000, xdr_int)
            },
            &mut |x| xdr_int(x, &mut sum),
        )
        .expect("tcp call");
    assert_eq!(sum, 5050);
}

#[test]
fn tcp_large_arrays_cross_fragment_boundaries() {
    let net = Network::new(NetworkConfig::lan(), 32);
    let reg = sum_registry();
    serve_tcp(&net, 902, reg, None);
    let mut clnt = ClntTcp::create(&net, 902, PROG, 1).expect("connect");
    // 12000 ints = 48 KB >> the 8 KB fragment bound: multi-fragment
    // records in both directions.
    let data: Vec<i32> = (0..12_000).collect();
    let want: i32 = data.iter().copied().fold(0, i32::wrapping_add);
    let mut sum = 0i32;
    clnt.call(
        1,
        &mut |x| {
            let mut v = data.clone();
            xdr_array(x, &mut v, 1 << 20, xdr_int)
        },
        &mut |x| xdr_int(x, &mut sum),
    )
    .expect("large tcp call");
    assert_eq!(sum, want);
}

#[test]
fn record_stream_roundtrip_over_sim_tcp_with_odd_fragment_sizes() {
    use specrpc_netsim::net::TcpHandler;
    use specrpc_netsim::SimTime;
    use specrpc_xdr::rec::XdrRec;
    use specrpc_xdr::{XdrOp, XdrStream};

    struct Echo;
    impl TcpHandler for Echo {
        fn on_bytes(&mut self, bytes: &[u8]) -> (Vec<u8>, SimTime) {
            (bytes.to_vec(), SimTime::from_micros(5))
        }
    }
    let net = Network::new(NetworkConfig::lan(), 33);
    net.serve_tcp(555, Box::new(|| Box::new(Echo)));
    let conn = net.connect_tcp(555).expect("connect");
    let mut enc = XdrRec::with_fragment_size(conn, XdrOp::Encode, 12);
    for i in 0..50 {
        enc.putlong(i * 3).unwrap();
    }
    enc.end_of_record().unwrap();
    let conn = enc.into_io();
    let mut dec = XdrRec::with_fragment_size(conn, XdrOp::Decode, 12);
    for i in 0..50 {
        assert_eq!(dec.getlong().unwrap(), i * 3);
    }
}

#[test]
fn pmap_full_lifecycle() {
    let net = Network::new(NetworkConfig::lan(), 34);
    pmap::start_portmapper(&net);
    assert!(pmap::pmap_set(
        &net,
        6100,
        Mapping {
            prog: PROG,
            vers: 1,
            prot: IPPROTO_UDP,
            port: 901
        }
    )
    .unwrap());
    assert_eq!(
        pmap::pmap_getport(&net, 6101, PROG, 1, IPPROTO_UDP).unwrap(),
        901
    );
    assert!(pmap::pmap_unset(&net, 6102, PROG, 1).unwrap());
    assert!(matches!(
        pmap::pmap_getport(&net, 6103, PROG, 1, IPPROTO_UDP),
        Err(specrpc_rpc::RpcError::ProgNotRegistered)
    ));
}
