//! Honest-wire integration: the shared-serialization link model, bounded
//! drop-tail receive queues, and the retransmission-strategy study, all
//! end to end through the RPC stack.
//!
//! The acceptance pin: a pipelined `call_batch` of N size-S datagrams
//! from one endpoint can complete **no earlier than `N·S·ns_per_byte`**
//! of cumulative wire time — back-to-back sends occupy the sender's link
//! one after another, exactly like the TCP model always did.

use proptest::prelude::*;
use specrpc::congestion::policy_label;
use specrpc::echo::{generic_encode_request, ECHO_IDL, ECHO_PROC, ECHO_PROG, ECHO_VERS};
use specrpc::{
    run_congestion, run_congestion_matrix, CongestionConfig, EventService, PathUsed, ProcPipeline,
    SpecClient, SpecService,
};
use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_netsim::{FaultConfig, SimTime};
use specrpc_rpc::{ClntUdp, Transport};
use specrpc_tempo::compile::StubArgs;
use specrpc_xdr::mem::XdrMem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PORT: u32 = 830;

/// Deploy the event-driven echo service and a specialized client over a
/// network with the given receive-queue cap; the handler counts its
/// invocations so exactly-once stays checkable under faults.
fn deploy(
    n: usize,
    seed: u64,
    faults: FaultConfig,
    rx_queue_cap: usize,
) -> (Network, SpecClient<ClntUdp>, EventService, Arc<AtomicU64>) {
    let proc_ = Arc::new(
        ProcPipeline::new(n)
            .build_from_idl(ECHO_IDL, None, ECHO_PROC)
            .unwrap(),
    );
    let net = Network::new(
        NetworkConfig::lan()
            .with_faults(faults)
            .with_rx_queue_cap(rx_queue_cap),
        seed,
    );
    let served = Arc::new(AtomicU64::new(0));
    let counter = served.clone();
    let service = SpecService::new()
        .proc(proc_.clone(), move |args: &StubArgs| {
            counter.fetch_add(1, Ordering::Relaxed);
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .serve_event(&net, PORT, 1);
    let mut clnt = ClntUdp::create(&net, 5900, PORT, ECHO_PROG, ECHO_VERS);
    clnt.retry_timeout = SimTime::from_millis(20);
    clnt.total_timeout = SimTime::from_millis(60_000);
    (net, SpecClient::from_parts(clnt, proc_), service, served)
}

#[test]
fn pipelined_batch_pays_cumulative_wire_serialization() {
    // The acceptance bound. N requests of S bytes each leave one client
    // endpoint; the link serializes them at `ns_per_byte` (80 ns/B on
    // the LAN config), so the batch cannot complete in less than
    // N·S·ns_per_byte of virtual time no matter how deeply it pipelines.
    let n = 600;
    let batch = 8;
    let (net, mut client, _svc, _served) = deploy(n, 5, FaultConfig::NONE, usize::MAX);

    // S: the wire length of one request image (xid-independent).
    let mut enc = XdrMem::encoder(1 << 16);
    let mut probe: Vec<i32> = (0..n as i32).collect();
    let s = generic_encode_request(&mut enc, 1, &mut probe).unwrap();

    let data: Vec<Vec<i32>> = (0..batch)
        .map(|k| (0..n).map(|i| (k * 1009 + i) as i32).collect())
        .collect();
    let args: Vec<StubArgs> = data
        .iter()
        .map(|d| client.args(vec![], vec![d.clone()]))
        .collect();
    let t0 = net.now();
    let results = client.call_batch(&args).unwrap();
    let elapsed = net.now().saturating_sub(t0);

    for (k, (out, path)) in results.iter().enumerate() {
        assert_eq!(*path, PathUsed::Fast, "call {k}");
        assert_eq!(out.arrays[0], data[k], "call {k}");
    }
    let floor = SimTime::from_nanos((batch * s) as u64 * 80);
    assert!(
        elapsed >= floor,
        "a pipelined batch of {batch}×{s}B must pay ≥ {floor} of wire \
         serialization, completed in {elapsed}"
    );
}

#[test]
fn single_call_round_trip_time_is_unchanged_by_occupancy() {
    // For a solitary datagram the occupancy charge commutes with the
    // propagation delay (`now + tx + latency == now + latency + tx`), so
    // an unpipelined round trip costs exactly what it did before the
    // shared-wire fix: request tx + latency + reply tx + latency.
    let n = 250;
    let (net, mut client, _svc, _served) = deploy(n, 9, FaultConfig::NONE, usize::MAX);
    let mut enc = XdrMem::encoder(1 << 16);
    let mut probe: Vec<i32> = (0..n as i32).collect();
    let req_len = generic_encode_request(&mut enc, 1, &mut probe).unwrap();

    let data: Vec<i32> = (0..n as i32).collect();
    let args = client.args(vec![], vec![data.clone()]);
    let t0 = net.now();
    let (out, _path) = client.call(&args).unwrap();
    let elapsed = net.now().saturating_sub(t0);
    assert_eq!(out.arrays[0], data);

    // Reply image: header (3 words smaller than a call header) + the
    // same array — bound it loosely from below by the array bytes.
    let reply_floor = 4 * n as u64;
    let floor =
        SimTime::from_nanos((req_len as u64 + reply_floor) * 80) + SimTime::from_micros(300); // two one-way latencies
    assert!(
        elapsed >= floor,
        "round trip {elapsed} below its wire floor {floor}"
    );
    // And no queueing inflation: a solitary call is within a small
    // multiple of the floor (service is instant in this deployment).
    assert!(
        elapsed <= floor + SimTime::from_millis(1),
        "solitary round trip must not queue: {elapsed} vs floor {floor}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bounded receive queues that never overflow are timing-transparent:
    /// the raw reply bytes of a pipelined exchange are identical with the
    /// cap at `usize::MAX` and at a generous finite value, with and
    /// without faults. (Only overflowing queues may change behavior —
    /// and then only by dropping, which the counters surface.)
    #[test]
    fn unoverflowed_bounded_queues_are_byte_transparent(
        n in 1usize..80,
        batch in 1usize..8,
        seed in 0u64..500,
        lossy in any::<bool>(),
    ) {
        let faults = if lossy { FaultConfig::LOSSY } else { FaultConfig::NONE };
        let run = |cap: usize| {
            let (net, mut client, _svc, served) = deploy(n, seed, faults, cap);
            let clnt = client.transport_mut();
            let mut requests = Vec::new();
            let mut xids = Vec::new();
            for k in 0..batch {
                let xid = Transport::next_xid(clnt);
                let mut enc = XdrMem::encoder(1 << 16);
                let mut data: Vec<i32> = (0..n).map(|i| (k * 7919 + i) as i32).collect();
                generic_encode_request(&mut enc, xid, &mut data).unwrap();
                requests.push(enc.into_bytes());
                xids.push(xid);
            }
            let refs: Vec<&[u8]> = requests.iter().map(Vec::as_slice).collect();
            let replies = clnt.exchange_batch(&refs, &xids).unwrap();
            (replies, served.load(Ordering::Relaxed), net.link_stats().queue_drops)
        };
        let (unbounded, served_a, drops_a) = run(usize::MAX);
        let (bounded, served_b, drops_b) = run(64);
        prop_assert_eq!(unbounded, bounded, "reply bytes must not depend on the cap");
        prop_assert_eq!(drops_a, 0u64);
        prop_assert_eq!(drops_b, 0u64, "a cap of 64 must not overflow here");
        // Exactly-once execution: the dup-request cache suppresses
        // retransmitted work, bounded queue or not.
        prop_assert_eq!(served_a, batch as u64);
        prop_assert_eq!(served_b, batch as u64);
    }
}

#[test]
fn retransmission_study_settles_every_call_across_the_fault_matrix() {
    // The strategy comparison over the fault matrix: every call settles,
    // retransmission recovers the (drop-tailed, faulted) majority, and
    // the whole matrix renders deterministically.
    for faults in [FaultConfig::NONE, FaultConfig::LOSSY] {
        let cfg = CongestionConfig::smoke().with_faults(faults);
        let reports = run_congestion_matrix(&cfg).unwrap();
        assert_eq!(reports.len(), 3);
        for report in &reports {
            let label = policy_label(report.policy);
            assert_eq!(
                report.completed + report.failed,
                cfg.clients as u64,
                "{label}: every call settles"
            );
            assert!(
                report.completed >= cfg.clients as u64 / 2,
                "{label}: retransmission must recover the majority \
                 (completed {})",
                report.completed
            );
            assert!(
                report.link.queue_drops > 0,
                "{label}: the overloaded burst must overflow the bounded queue"
            );
        }
        // Determinism: a second identical matrix renders byte-identical.
        let again = run_congestion_matrix(&cfg).unwrap();
        for (a, b) in reports.iter().zip(&again) {
            assert_eq!(a.render(), b.render());
        }
    }
}

#[test]
fn backoff_wins_the_overloaded_burst_on_retransmission_load() {
    // The study's headline: under pure overload (no random loss),
    // exponential backoff sends the fewest spurious retransmissions,
    // and pacing sheds queue drops relative to fixed re-blasting.
    let cfg = CongestionConfig::smoke();
    let reports = run_congestion_matrix(&cfg).unwrap();
    let by_label = |l: &str| {
        reports
            .iter()
            .find(|r| policy_label(r.policy) == l)
            .unwrap()
    };
    let (fixed, backoff, paced) = (by_label("fixed"), by_label("expbackoff"), by_label("paced"));
    assert!(
        backoff.retransmits < fixed.retransmits,
        "backoff {} vs fixed {}",
        backoff.retransmits,
        fixed.retransmits
    );
    assert!(
        paced.link.queue_drops < fixed.link.queue_drops,
        "paced {} vs fixed {} drops",
        paced.link.queue_drops,
        fixed.link.queue_drops
    );
}

#[test]
fn congestion_report_surfaces_link_counters_through_summary() {
    let mut cfg = CongestionConfig::smoke();
    cfg.clients = 16;
    let report = run_congestion(&cfg).unwrap();
    let text = report.summary().render();
    assert!(text.contains("link queues:"), "{text}");
    assert!(text.contains("latency (virtual time):"), "{text}");
}
