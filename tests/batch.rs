//! Batched-call conformance: a [`SpecClient::call_batch`] of N calls is
//! equivalent — byte for byte at the transport level, value for value at
//! the facade level — to N sequential calls, across shapes, transports,
//! batch sizes, and fault configurations.
//!
//! Equivalence holds because batching changes *when* requests are in
//! flight, never *what* is exchanged: the same xid stream is consumed in
//! the same order, each request is the same wire image, and replies are
//! matched back to submission order by xid.

use proptest::prelude::*;
use specrpc::echo::{generic_encode_request, ECHO_IDL, ECHO_PROC, ECHO_PROG, ECHO_VERS};
use specrpc::{EventService, PathUsed, ProcPipeline, SpecClient, SpecService};
use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_netsim::{FaultConfig, SimTime};
use specrpc_rpc::{ClntUdp, Transport};
use specrpc_tempo::compile::StubArgs;
use specrpc_xdr::mem::XdrMem;
use std::sync::Arc;

const PORT: u32 = 820;

/// Deploy the echo service (event-driven) and a specialized client. The
/// returned `EventService` keeps the reactor alive for the test's
/// duration (dropping it joins the workers).
fn deploy(
    n: usize,
    seed: u64,
    faults: FaultConfig,
) -> (Network, SpecClient<ClntUdp>, EventService) {
    let proc_ = Arc::new(
        ProcPipeline::new(n)
            .build_from_idl(ECHO_IDL, None, ECHO_PROC)
            .unwrap(),
    );
    let net = Network::new(NetworkConfig::lan().with_faults(faults), seed);
    let service = SpecService::new()
        .proc(proc_.clone(), |args: &StubArgs| {
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .serve_event(&net, PORT, 1);
    let mut clnt = ClntUdp::create(&net, 5800, PORT, ECHO_PROG, ECHO_VERS);
    clnt.retry_timeout = SimTime::from_millis(20);
    clnt.total_timeout = SimTime::from_millis(60_000);
    (net, SpecClient::from_parts(clnt, proc_), service)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Facade-level equivalence over arbitrary array shapes and batch
    /// sizes: `call_batch` of N returns exactly what N sequential
    /// `call`s return, in submission order, all on the fast path.
    #[test]
    fn call_batch_equals_sequential_calls(
        n in 1usize..120,
        batch in 1usize..12,
        seed in 0u64..1000,
    ) {
        // Sequential reference deployment.
        let (_net_a, mut seq, _svc_a) = deploy(n, seed, FaultConfig::NONE);
        let data: Vec<Vec<i32>> = (0..batch)
            .map(|k| (0..n).map(|i| (seed as i32) ^ ((k * 1000 + i) as i32)).collect())
            .collect();
        let mut seq_out = Vec::new();
        for d in &data {
            let args = seq.args(vec![], vec![d.clone()]);
            let (out, path) = seq.call(&args).unwrap();
            prop_assert_eq!(path, PathUsed::Fast);
            seq_out.push(out);
        }

        // Batched deployment: same seed, same local port -> same xid
        // stream, same network trace.
        let (_net_b, mut batched, _svc_b) = deploy(n, seed, FaultConfig::NONE);
        let batch_args: Vec<StubArgs> = data
            .iter()
            .map(|d| batched.args(vec![], vec![d.clone()]))
            .collect();
        let results = batched.call_batch(&batch_args).unwrap();
        prop_assert_eq!(results.len(), seq_out.len());
        for ((out, path), want) in results.iter().zip(&seq_out) {
            prop_assert_eq!(*path, PathUsed::Fast);
            prop_assert_eq!(&out.arrays, &want.arrays);
            prop_assert_eq!(&out.scalars, &want.scalars);
        }
        prop_assert_eq!(batched.fast_calls, batch as u64);
        prop_assert_eq!(batched.calls, batch as u64);
    }

    /// Transport-level byte identity: the raw replies of an
    /// `exchange_batch` are byte-identical to the raw replies of the
    /// same requests exchanged one at a time (same deployment seed, same
    /// client port -> identical deterministic traces).
    #[test]
    fn exchange_batch_replies_are_byte_identical_to_sequential(
        n in 1usize..80,
        batch in 1usize..10,
        seed in 0u64..1000,
    ) {
        let build = |clnt: &mut ClntUdp, count: usize| {
            let mut requests = Vec::new();
            let mut xids = Vec::new();
            for k in 0..count {
                let xid = Transport::next_xid(clnt);
                let mut enc = XdrMem::encoder(1 << 16);
                let mut data: Vec<i32> =
                    (0..n).map(|i| (k * 7919 + i) as i32).collect();
                generic_encode_request(&mut enc, xid, &mut data).unwrap();
                requests.push(enc.into_bytes());
                xids.push(xid);
            }
            (requests, xids)
        };

        let (_net_a, mut seq_client, _svc_a) = deploy(n, seed, FaultConfig::NONE);
        let seq_clnt = seq_client.transport_mut();
        let (requests, xids) = build(seq_clnt, batch);
        let sequential: Vec<Vec<u8>> = requests
            .iter()
            .zip(&xids)
            .map(|(r, &x)| seq_clnt.exchange(r, x).unwrap())
            .collect();

        let (_net_b, mut batch_client, _svc_b) = deploy(n, seed, FaultConfig::NONE);
        let batch_clnt = batch_client.transport_mut();
        let (requests2, xids2) = build(batch_clnt, batch);
        prop_assert_eq!(&requests, &requests2, "same xid stream, same bytes");
        let refs: Vec<&[u8]> = requests2.iter().map(Vec::as_slice).collect();
        let batched = batch_clnt.exchange_batch(&refs, &xids2).unwrap();
        prop_assert_eq!(batched, sequential);
    }
}

#[test]
fn batch_survives_loss_duplication_and_reordering() {
    // The pipelined path keeps its retransmission semantics: under a
    // faulty link every batched call still completes, results stay in
    // submission order, and the handler still runs exactly once per
    // transaction (dup cache + in-progress suppression).
    let n = 24;
    for seed in [11u64, 22, 33] {
        let (_clean_net, mut clean, _svc_c) = deploy(n, seed, FaultConfig::NONE);
        let (_faulty_net, mut faulty, _svc_f) = deploy(n, seed, FaultConfig::LOSSY);
        let data: Vec<Vec<i32>> = (0..8)
            .map(|k| (0..n).map(|i| (k * 100 + i) as i32).collect())
            .collect();
        let clean_args: Vec<StubArgs> = data
            .iter()
            .map(|d| clean.args(vec![], vec![d.clone()]))
            .collect();
        let faulty_args: Vec<StubArgs> = data
            .iter()
            .map(|d| faulty.args(vec![], vec![d.clone()]))
            .collect();
        let clean_out = clean.call_batch(&clean_args).unwrap();
        let faulty_out = faulty.call_batch(&faulty_args).unwrap();
        for (k, ((co, cp), (fo, fp))) in clean_out.iter().zip(&faulty_out).enumerate() {
            assert_eq!(cp, fp, "seed {seed} call {k}");
            assert_eq!(co.arrays, fo.arrays, "seed {seed} call {k}");
            assert_eq!(co.arrays[0], data[k], "seed {seed} call {k}");
        }
    }
}

#[test]
fn empty_batch_is_a_no_op_through_the_facade() {
    let (_net, mut client, _svc) = deploy(8, 1, FaultConfig::NONE);
    let results = client.call_batch(&[]).unwrap();
    assert!(results.is_empty());
    assert_eq!(client.calls, 0);
}

/// A service with one tiny fixed-shape procedure (`int INC(int)` — a
/// 44-byte call message) for the coalescing economics pins.
const INC_IDL: &str = r#"
    program INCPROG {
        version INCVERS { int INC(int) = 1; } = 1;
    } = 0x20000808;
"#;

/// Deploy `INC` behind the cache-fronted UDP dispatch on a link charging
/// an honest per-packet cost, and return a specialized client whose
/// transport uses `policy` (or none).
fn deploy_inc(
    config: NetworkConfig,
    policy: Option<specrpc_rpc::CoalescePolicy>,
) -> (Network, SpecClient<ClntUdp>) {
    let proc_ = specrpc::ProcSpec::new(INC_IDL, 1)
        .compile(None, None)
        .unwrap();
    let net = Network::new(config, 7);
    SpecService::new()
        .proc(proc_.clone(), |args: &StubArgs| {
            StubArgs::new(vec![args.scalars.last().unwrap() + 1], vec![])
        })
        .serve_udp(&net, 830);
    let mut clnt = ClntUdp::create(&net, 5830, 830, 0x2000_0808, 1);
    if let Some(p) = policy {
        clnt = clnt.with_coalescing(p);
    }
    (net.clone(), SpecClient::from_parts(clnt, proc_))
}

/// The per-packet cost model the coalescing pins run under: 28 header
/// bytes and a 100 µs fixed cost per wire fragment.
fn packet_taxed_lan() -> NetworkConfig {
    NetworkConfig::lan()
        .with_datagram_cost(specrpc_netsim::UDP_IP_HEADER_BYTES, 100_000)
        .with_mtu(1500)
}

/// Issue 64 one-way `INC` calls followed by the sync call that seals,
/// flushes, and acknowledges them; return virtual time for the whole
/// burst and the datagrams the run put on the wire.
fn run_burst(policy: specrpc_rpc::CoalescePolicy) -> (SimTime, u64) {
    let (net, mut client) = deploy_inc(packet_taxed_lan(), Some(policy));
    let t0 = net.now();
    for i in 0..64 {
        client.call_oneway(&client.args(vec![i], vec![])).unwrap();
    }
    let (out, path) = client.call(&client.args(vec![1000], vec![])).unwrap();
    assert_eq!(path, PathUsed::Fast);
    assert_eq!(*out.scalars.last().unwrap(), 1001);
    assert_eq!(client.oneway_calls, 64);
    (net.now().saturating_sub(t0), net.datagrams_sent())
}

/// The PR's deterministic acceptance pin: a burst of 64 small (≤ 64 B)
/// calls through coalesced one-way batching improves amortized per-call
/// latency by at least 40% over the one-datagram-per-call baseline —
/// same framing, same one-way semantics, only the packing differs.
#[test]
fn coalesced_oneway_burst_amortizes_per_call_latency_by_40_percent() {
    let (coalesced, coalesced_dg) = run_burst(specrpc_rpc::CoalescePolicy::ethernet());
    let (per_call, per_call_dg) = run_burst(specrpc_rpc::CoalescePolicy::per_call());
    // 65 calls: 64 one-way + the sealing sync call. The envelope path
    // needs a handful of datagrams; the baseline pays one per call.
    assert!(
        coalesced_dg + 32 < per_call_dg,
        "coalesced {coalesced_dg} vs per-call {per_call_dg} datagrams"
    );
    let amortized_coalesced = coalesced.as_nanos() / 65;
    let amortized_per_call = per_call.as_nanos() / 65;
    assert!(
        amortized_coalesced * 10 <= amortized_per_call * 6,
        "amortized {amortized_coalesced} ns/call coalesced vs \
         {amortized_per_call} ns/call per-datagram (need >= 40% win)"
    );
}

/// Defaults preserve existing behavior: a solitary large call's RTT and
/// reply bytes are identical whether the client carries a (quiescent)
/// coalescer or none at all — coalescing off the call path changes
/// nothing, byte- or time-wise.
#[test]
fn solitary_large_call_rtt_unchanged_when_coalescing_off() {
    let big = 2000;
    let run = |policy: Option<specrpc_rpc::CoalescePolicy>| {
        let proc_ = Arc::new(
            ProcPipeline::new(big)
                .build_from_idl(ECHO_IDL, None, ECHO_PROC)
                .unwrap(),
        );
        let net = Network::new(NetworkConfig::lan(), 13);
        SpecService::new()
            .proc(proc_.clone(), |args: &StubArgs| {
                StubArgs::new(vec![], vec![args.arrays[0].clone()])
            })
            .serve_udp(&net, 831);
        let mut clnt = ClntUdp::create(&net, 5831, 831, ECHO_PROG, ECHO_VERS);
        if let Some(p) = policy {
            clnt = clnt.with_coalescing(p);
        }
        let xid = Transport::next_xid(&mut clnt);
        let mut enc = XdrMem::encoder(1 << 16);
        let mut data: Vec<i32> = (0..big as i32).collect();
        generic_encode_request(&mut enc, xid, &mut data).unwrap();
        let req = enc.into_bytes();
        let t0 = net.now();
        let reply = Transport::call(&mut clnt, &req, xid).unwrap();
        (net.now().saturating_sub(t0), reply)
    };
    let (rtt_plain, reply_plain) = run(None);
    let (rtt_quiet, reply_quiet) = run(Some(specrpc_rpc::CoalescePolicy::ethernet()));
    assert_eq!(rtt_plain, rtt_quiet, "time-identical");
    assert_eq!(reply_plain, reply_quiet, "byte-identical");
}

#[test]
fn batch_through_tcp_transport_matches_sequential() {
    // The record-marked stream pipelines batches too (default trait path
    // exercised through the facade): equivalence again.
    use specrpc_rpc::ClntTcp;
    let n = 16;
    let proc_ = Arc::new(
        ProcPipeline::new(n)
            .build_from_idl(ECHO_IDL, None, ECHO_PROC)
            .unwrap(),
    );
    let deploy_tcp = |seed: u64| {
        let net = Network::new(NetworkConfig::lan(), seed);
        SpecService::new()
            .proc(proc_.clone(), |args: &StubArgs| {
                StubArgs::new(vec![], vec![args.arrays[0].clone()])
            })
            .serve_tcp(&net, PORT + 1);
        let clnt = ClntTcp::create(&net, PORT + 1, ECHO_PROG, ECHO_VERS).unwrap();
        SpecClient::from_parts(clnt, proc_.clone())
    };
    let data: Vec<Vec<i32>> = (0..5)
        .map(|k| (0..n).map(|i| (k * 31 + i) as i32).collect())
        .collect();

    let mut seq = deploy_tcp(9);
    let mut seq_out = Vec::new();
    for d in &data {
        let args = seq.args(vec![], vec![d.clone()]);
        seq_out.push(seq.call(&args).unwrap());
    }

    let mut batched = deploy_tcp(9);
    let args: Vec<StubArgs> = data
        .iter()
        .map(|d| batched.args(vec![], vec![d.clone()]))
        .collect();
    let results = batched.call_batch(&args).unwrap();
    for ((out, path), (want, want_path)) in results.iter().zip(&seq_out) {
        assert_eq!(path, want_path);
        assert_eq!(&out.arrays, &want.arrays);
    }
}
