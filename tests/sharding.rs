//! Shard-count invariance: partitioning the serving sockets across N
//! reactors must not change anything a client can observe.
//!
//! In deterministic single-driver mode the shard map executes every
//! delivery inline on the driving thread in network order, so shard
//! assignment only moves *ownership* (which dup cache and buffer pool a
//! socket uses) — never delivery order. What must hold, across the whole
//! fault matrix of `tests/faults.rs`:
//!
//! - reply **bytes** identical between a 1-shard and an N-shard map;
//! - the virtual clock identical at the end of the run;
//! - the user handler executes **exactly once per transaction** even
//!   when the network duplicates request datagrams (each shard's
//!   duplicate-request cache replays for its own sockets);
//! - retransmission counts identical (loss patterns are seeded on the
//!   network, not the serving layer).

use specrpc::echo::{generic_encode_request, ECHO_IDL, ECHO_PROG, ECHO_VERS};
use specrpc::{ProcPipeline, SpecService};
use specrpc_netsim::net::{Addr, Network, NetworkConfig};
use specrpc_netsim::{FaultConfig, SimTime};
use specrpc_rpc::ClntUdp;
use specrpc_tempo::compile::StubArgs;
use specrpc_xdr::mem::XdrMem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const N: usize = 24;
const CALLS: usize = 16;
const SEEDS: [u64; 3] = [11, 22, 33];
const PORTS: [Addr; 4] = [700, 701, 702, 703];

fn configs() -> Vec<(&'static str, FaultConfig)> {
    vec![
        (
            "none",
            FaultConfig {
                loss: 0.0,
                duplicate: 0.0,
                reorder: 0.0,
            },
        ),
        (
            "loss",
            FaultConfig {
                loss: 0.25,
                duplicate: 0.0,
                reorder: 0.0,
            },
        ),
        (
            "duplicate",
            FaultConfig {
                loss: 0.0,
                duplicate: 0.3,
                reorder: 0.0,
            },
        ),
        (
            "reorder",
            FaultConfig {
                loss: 0.0,
                duplicate: 0.0,
                reorder: 0.3,
            },
        ),
        ("mixed", FaultConfig::LOSSY),
    ]
}

struct RunResult {
    replies: Vec<Vec<u8>>,
    retransmits: u64,
    handler_runs: u64,
    per_shard: Vec<u64>,
    end_time: SimTime,
}

fn call_data(i: usize) -> Vec<i32> {
    (0..N).map(|k| (i * 1000 + k) as i32).collect()
}

/// Serve the counting echo service over `PORTS` partitioned across
/// `shards` reactors (single-driver mode), then run `CALLS` sequential
/// exchanges rotating across the sockets — so every shard sees traffic
/// and the interleaving crosses shard boundaries on every call.
fn run_sharded(cfg: FaultConfig, seed: u64, shards: usize) -> RunResult {
    let net = Network::new(NetworkConfig::lan().with_faults(cfg), seed);
    let runs = Arc::new(AtomicU64::new(0));
    let r = runs.clone();
    let proc_ = Arc::new(
        ProcPipeline::new(N)
            .build_from_idl(ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let service = SpecService::new()
        .proc(proc_, move |args: &StubArgs| {
            r.fetch_add(1, Ordering::Relaxed);
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .serve_sharded(&net, &PORTS, shards, 0);

    let mut clients: Vec<ClntUdp> = PORTS
        .iter()
        .enumerate()
        .map(|(i, &port)| {
            let mut c = ClntUdp::create(&net, 5000 + i as Addr, port, ECHO_PROG, ECHO_VERS);
            c.retry_timeout = SimTime::from_millis(20);
            c.total_timeout = SimTime::from_millis(60_000);
            c
        })
        .collect();

    let mut replies = Vec::new();
    for i in 0..CALLS {
        let clnt = &mut clients[i % PORTS.len()];
        let xid = clnt.next_xid();
        let mut enc = XdrMem::encoder(1 << 16);
        let mut data = call_data(i);
        generic_encode_request(&mut enc, xid, &mut data).expect("encode");
        let reply = clnt
            .exchange(&enc.into_bytes(), xid)
            .unwrap_or_else(|e| panic!("call {i} with {shards} shard(s): {e}"));
        replies.push(reply);
    }
    RunResult {
        replies,
        retransmits: clients.iter().map(|c| c.retransmits).sum(),
        handler_runs: runs.load(Ordering::Relaxed),
        per_shard: service.per_shard_events(),
        end_time: net.now(),
    }
}

#[test]
fn shard_count_is_invisible_under_the_fault_matrix() {
    for (name, cfg) in configs() {
        for seed in SEEDS {
            let one = run_sharded(cfg, seed, 1);
            let four = run_sharded(cfg, seed, 4);
            assert_eq!(
                four.replies, one.replies,
                "{name}/{seed}: reply bytes must not depend on the shard count"
            );
            assert_eq!(
                four.end_time, one.end_time,
                "{name}/{seed}: the virtual clock must not depend on the shard count"
            );
            assert_eq!(
                four.retransmits, one.retransmits,
                "{name}/{seed}: loss patterns are seeded on the network"
            );
            assert_eq!(
                four.handler_runs, CALLS as u64,
                "{name}/{seed}: handler must run exactly once per transaction"
            );
            assert_eq!(one.handler_runs, CALLS as u64);
            assert_eq!(one.per_shard.len(), 1);
            assert_eq!(four.per_shard.len(), 4);
            assert_eq!(
                four.per_shard.iter().sum::<u64>(),
                one.per_shard.iter().sum::<u64>(),
                "{name}/{seed}: total events must match (only ownership moves)"
            );
        }
    }
}

#[test]
fn every_datagram_duplicated_replays_from_each_shards_cache() {
    // duplicate = 1.0: the second delivery of every request must be
    // absorbed by the duplicate-request cache of the shard owning the
    // target socket — exactly one handler run per call, and replies
    // identical to a fault-free run of the same call sequence.
    let every_dup = FaultConfig {
        loss: 0.0,
        duplicate: 1.0,
        reorder: 0.0,
    };
    for seed in SEEDS {
        for shards in [1, 2, 4] {
            let dup = run_sharded(every_dup, seed, shards);
            let clean = run_sharded(FaultConfig::NONE, seed, shards);
            assert_eq!(
                dup.handler_runs, CALLS as u64,
                "seed {seed}/{shards} shard(s): duplicates must replay, not re-dispatch"
            );
            assert_eq!(dup.replies, clean.replies, "seed {seed}/{shards} shard(s)");
        }
    }
}

#[test]
fn traffic_spreads_across_shards() {
    let r = run_sharded(FaultConfig::NONE, 11, 4);
    assert_eq!(r.per_shard.len(), 4);
    assert!(
        r.per_shard.iter().all(|&e| e > 0),
        "rotating across the sockets must touch every shard: {:?}",
        r.per_shard
    );
}
