//! Smoke test: every runnable example must build and exit successfully.
//!
//! Examples are the repo's executable documentation (the paper's §2 `rmin`
//! walk-through, the §6 array workloads, the NFS-flavored service, and the
//! specialization report); a PR that breaks one should fail `cargo test`,
//! not wait for a human to try `cargo run --example`.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "array_exchange",
    "nfs_like",
    "specialization_report",
    "million_clients",
];

#[test]
fn all_examples_run_cleanly() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for name in EXAMPLES {
        let out = Command::new(&cargo)
            .args(["run", "--quiet", "--example", name])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        assert!(
            out.status.success(),
            "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
    }
}
