//! The DESIGN.md §3 shape expectations, asserted end-to-end from the
//! experiment drivers (these are the properties the paper's figures show;
//! absolute values are modeled, shapes must hold).

use specrpc::summary::Summary;
use specrpc_bench_shapes::*;

/// A thin re-export shim: the bench crate is a dev-only dependency of the
/// workspace root via path, so pull what we need through a module.
mod specrpc_bench_shapes {
    pub use specrpc::echo::{build_echo_proc, PAPER_SIZES};
}

#[test]
fn residual_grows_linearly_with_context_size_table3() {
    // Table 3: specialized code grows with the unroll count; generic is
    // constant. Check linear growth of the compiled stub.
    let mut sizes = Vec::new();
    for &n in &PAPER_SIZES[..4] {
        let p = build_echo_proc(n, None).expect("pipeline");
        sizes.push((n, p.client_encode.program.code_size_bytes()));
    }
    for w in sizes.windows(2) {
        let (n0, s0) = w[0];
        let (n1, s1) = w[1];
        let slope = (s1 - s0) as f64 / (n1 - n0) as f64;
        assert!((slope - 40.0).abs() < 1.0, "slope {slope} bytes/element");
    }
}

#[test]
fn eliminations_scale_with_array_size() {
    // §3: the interpretive overhead the specializer removes is per-element;
    // the report's eliminated counts must scale linearly.
    let s100 = Summary::from_report(&build_echo_proc(100, None).unwrap().client_encode.report);
    let s500 = Summary::from_report(&build_echo_proc(500, None).unwrap().client_encode.report);
    let ratio = s500.dispatches_eliminated as f64 / s100.dispatches_eliminated as f64;
    assert!((ratio - 5.0).abs() < 0.5, "dispatch ratio {ratio}");
    let ratio = s500.overflow_checks_eliminated as f64 / s100.overflow_checks_eliminated as f64;
    assert!((ratio - 5.0).abs() < 0.6, "overflow ratio {ratio}");
}

#[test]
fn decode_keeps_constant_guard_count() {
    // §3.4: decode keeps soundness checks; their number must NOT grow
    // with the array size (they guard the message, not the elements).
    let g8 = Summary::from_report(&build_echo_proc(8, None).unwrap().client_decode.report)
        .dynamic_guards;
    let g800 = Summary::from_report(&build_echo_proc(800, None).unwrap().client_decode.report)
        .dynamic_guards;
    assert_eq!(g8, g800, "guards must be size-independent");
    assert!(g8 >= 5);
}

#[test]
fn chunked_stub_code_is_bounded() {
    // Table 4: the 250-chunked stub's code size stops growing with n.
    let c1000 = build_echo_proc(1000, Some(250)).unwrap();
    let c2000 = build_echo_proc(2000, Some(250)).unwrap();
    let s1 = c1000.client_encode.program.code_size_bytes();
    let s2 = c2000.client_encode.program.code_size_bytes();
    assert!(
        (s2 as i64 - s1 as i64).unsigned_abs() < 2_000,
        "chunked code sizes {s1} vs {s2} must be near-constant"
    );
}
