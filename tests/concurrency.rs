//! Concurrency stress: the tentpole property of this refactor. The whole
//! serving stack is `Send + Sync` (compile-time asserted below), one
//! `SpecService` served in `serve_threaded` mode handles N client threads
//! hammering it over one shared network, every thread resolves its stubs
//! through one shared `StubCache`, and afterwards every counter adds up:
//! no lost or duplicated replies, `hits + misses == cache lookups`, and
//! the pool's per-thread dispatch counts sum to the number of unique
//! transactions.

use specrpc::echo::{echo_spec, ECHO_IDL, ECHO_PROG, ECHO_VERS};
use specrpc::{
    EventService, PathUsed, ProcPipeline, SpecClient, SpecService, StubCache, Summary,
    ThreadedService,
};
use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_netsim::SimTime;
use specrpc_rpc::{ClntUdp, DispatchPool, SvcRegistry};
use specrpc_tempo::compile::StubArgs;
use std::sync::Arc;

const N: usize = 32;
const THREADS: usize = 8;
const CALLS: usize = 12;
const PORT: u32 = 780;

/// Compile-time assertion (static_assertions-style): the serving stack
/// crosses threads. A reintroduced `Rc`/`RefCell` anywhere inside these
/// types fails this test at *compile* time.
#[test]
fn serving_stack_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Network>();
    assert_send_sync::<SvcRegistry>();
    assert_send_sync::<SpecService>();
    assert_send_sync::<StubCache>();
    assert_send_sync::<DispatchPool>();
    assert_send_sync::<ThreadedService>();
    assert_send_sync::<EventService>();
    assert_send_sync::<specrpc_rpc::EventLoop>();
}

fn thread_data(t: usize, i: usize) -> Vec<i32> {
    (0..N)
        .map(|k| (t * 1_000_000 + i * 1_000 + k) as i32)
        .collect()
}

#[test]
fn n_threads_hammer_one_threaded_service_through_one_cache() {
    let cache = Arc::new(StubCache::new());
    let net = Network::new(NetworkConfig::lan(), 4242);

    // The server compiles through the shared cache: lookup #1, the miss.
    let proc_ = cache
        .get_or_compile_idl(&ProcPipeline::new(N), ECHO_IDL, None, 1)
        .expect("server stubs");
    let served = SpecService::new()
        .proc(proc_, |args: &StubArgs| {
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .serve_threaded(&net, PORT, 4);

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let net = net.clone();
        let cache = cache.clone();
        handles.push(std::thread::spawn(move || {
            let mut clnt = ClntUdp::create(&net, 6000 + t as u32, PORT, ECHO_PROG, ECHO_VERS);
            // Other threads may fast-forward the shared clock while we
            // wait; keep per-try short and the total budget huge.
            clnt.retry_timeout = SimTime::from_millis(50);
            clnt.total_timeout = SimTime::from_millis(600_000);
            // Lookups #2..=#THREADS+1: hits on the shared cache.
            let mut client = SpecClient::builder(clnt)
                .proc(echo_spec(N))
                .cache(cache)
                .build()
                .expect("client stubs");
            let mut replies = 0u64;
            for i in 0..CALLS {
                let data = thread_data(t, i);
                let args = client.args(vec![], vec![data.clone()]);
                let (out, _path) = client
                    .call(&args)
                    .unwrap_or_else(|e| panic!("thread {t} call {i}: {e}"));
                // A lost reply would time out above; a duplicated or
                // cross-matched reply would fail here.
                assert_eq!(out.arrays[0], data, "thread {t} call {i}");
                replies += 1;
            }
            (replies, client.fast_calls + client.fallback_calls)
        }));
    }

    let mut total_replies = 0u64;
    for h in handles {
        let (replies, calls) = h.join().expect("client thread");
        assert_eq!(replies, CALLS as u64, "every call got exactly one reply");
        assert_eq!(calls, CALLS as u64);
        total_replies += replies;
    }
    assert_eq!(total_replies, (THREADS * CALLS) as u64);

    // Cache accounting: hits + misses == lookups (1 server + THREADS
    // clients), with exactly one Tempo run for the shared context.
    let stats = cache.stats();
    let lookups = (THREADS + 1) as u64;
    assert_eq!(stats.hits + stats.misses, lookups, "{stats:?}");
    assert_eq!(stats.misses, 1, "one compile for everyone: {stats:?}");
    assert_eq!(stats.entries, 1);

    // Pool accounting: each unique transaction dispatched exactly once
    // (retransmissions replay from the duplicate-request cache and are
    // not re-dispatched), spread across the workers.
    let per_thread = served.per_thread_dispatches();
    assert_eq!(per_thread.len(), 4);
    assert_eq!(
        per_thread.iter().sum::<u64>(),
        (THREADS * CALLS) as u64,
        "unique dispatches: {per_thread:?}"
    );
    assert_eq!(
        served.registry.raw_dispatches(),
        (THREADS * CALLS) as u64,
        "all calls took the specialized fast path"
    );
    assert_eq!(served.registry.raw_fallbacks(), 0);

    // The whole story surfaces through one Summary.
    let report = Summary::default()
        .with_cache(stats)
        .with_threads(per_thread)
        .render();
    assert!(report.contains("stub cache"), "{report}");
    assert!(report.contains("threaded dispatch"), "{report}");
}

#[test]
fn n_threads_hammer_one_event_served_service_with_batches() {
    // The event-driven front end under real cross-thread pressure:
    // THREADS client threads drive one shared network, each issuing
    // pipelined batches against a 4-worker reactor (drivers steal when
    // the reactor is busy). Every batch completes in submission order,
    // no reply is lost or cross-matched, and the event accounting
    // (workers + steals) covers every unique transaction.
    const BATCH: usize = 4;
    const BATCHES: usize = 3;
    let cache = Arc::new(StubCache::new());
    let net = Network::new(NetworkConfig::lan(), 99);
    let proc_ = cache
        .get_or_compile_idl(&ProcPipeline::new(N), ECHO_IDL, None, 1)
        .expect("server stubs");
    let served = SpecService::new()
        .proc(proc_, |args: &StubArgs| {
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .serve_event(&net, PORT + 20, 4);

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let net = net.clone();
        let cache = cache.clone();
        handles.push(std::thread::spawn(move || {
            let mut clnt = ClntUdp::create(&net, 6100 + t as u32, PORT + 20, ECHO_PROG, ECHO_VERS);
            clnt.retry_timeout = SimTime::from_millis(50);
            clnt.total_timeout = SimTime::from_millis(600_000);
            let mut client = SpecClient::builder(clnt)
                .proc(echo_spec(N))
                .cache(cache)
                .build()
                .expect("client stubs");
            for b in 0..BATCHES {
                let batch: Vec<StubArgs> = (0..BATCH)
                    .map(|k| {
                        let data = thread_data(t, b * BATCH + k);
                        client.args(vec![], vec![data])
                    })
                    .collect();
                let results = client
                    .call_batch(&batch)
                    .unwrap_or_else(|e| panic!("thread {t} batch {b}: {e}"));
                for (k, (out, _path)) in results.iter().enumerate() {
                    let want = thread_data(t, b * BATCH + k);
                    assert_eq!(out.arrays[0], want, "thread {t} batch {b} call {k}");
                }
            }
            client.fast_calls + client.fallback_calls
        }));
    }
    let mut total = 0u64;
    for h in handles {
        total += h.join().expect("client thread");
    }
    assert_eq!(total, (THREADS * BATCH * BATCHES) as u64);
    // Workers + steals cover every unique transaction (duplicates are
    // replayed from the cache, not re-dispatched; under a clean network
    // with huge timeouts there are none).
    assert_eq!(served.total_events(), (THREADS * BATCH * BATCHES) as u64);
    let report = Summary::default()
        .with_events(served.per_worker_events())
        .render();
    assert!(report.contains("event loop"), "{report}");
}

#[test]
fn threaded_tcp_pins_connections_to_workers() {
    // serve_threaded + also_tcp: connections from different client
    // threads dispatch on (round-robin) pinned workers; records within a
    // connection stay ordered.
    let net = Network::new(NetworkConfig::lan(), 777);
    let proc_ = Arc::new(
        ProcPipeline::new(N)
            .build_from_idl(ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let served = SpecService::new()
        .proc(proc_.clone(), |args: &StubArgs| {
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .serve_threaded(&net, PORT + 10, 2);
    served.also_tcp(&net, PORT + 11);

    let mut handles = Vec::new();
    for t in 0..4usize {
        let net = net.clone();
        let proc_ = proc_.clone();
        handles.push(std::thread::spawn(move || {
            let clnt = specrpc_rpc::ClntTcp::create(&net, PORT + 11, ECHO_PROG, ECHO_VERS)
                .expect("connect");
            let mut client = SpecClient::from_parts(clnt, proc_);
            client
                .transport_mut()
                .stream_mut()
                .set_read_timeout(SimTime::from_millis(600_000));
            for i in 0..5 {
                let data = thread_data(t, i);
                let args = client.args(vec![], vec![data.clone()]);
                let (out, path) = client
                    .call(&args)
                    .unwrap_or_else(|e| panic!("tcp thread {t} call {i}: {e}"));
                assert_eq!(out.arrays[0], data);
                assert_eq!(path, PathUsed::Fast);
            }
        }));
    }
    for h in handles {
        h.join().expect("tcp client thread");
    }
    let per_thread = served.per_thread_dispatches();
    assert_eq!(per_thread.iter().sum::<u64>(), 20, "{per_thread:?}");
    assert!(
        per_thread.iter().all(|&c| c > 0),
        "both workers saw connections: {per_thread:?}"
    );
}
