//! The existing end-to-end echo exchanges, replayed through the
//! `specrpc-async` future/waker adapter: the async lane must produce
//! the same replies as the blocking lane, recover from loss via its
//! virtual-time retransmission, and compose with a sharded serving map
//! driven as a background future.

use specrpc::echo::{build_echo_proc, echo_service, EchoBench, ECHO_PORT, ECHO_PROG, ECHO_VERS};
use specrpc::{PathUsed, SpecClient};
use specrpc_async::{block_on, call, call_batch, serve, with_background};
use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_netsim::{FaultConfig, SimTime};
use specrpc_rpc::ClntUdp;
use std::sync::Arc;

#[test]
fn async_round_trip_matches_the_blocking_lane() {
    let data: Vec<i32> = (0..32).map(|k| k * 3 - 7).collect();

    let mut blocking = EchoBench::new(32, None, 9).unwrap();
    let args = blocking.spec.args(vec![], vec![data.clone()]);
    let (want, want_path) = blocking.spec.call(&args).unwrap();

    let mut bench = EchoBench::new(32, None, 9).unwrap();
    let net = bench.net.clone();
    let args = bench.spec.args(vec![], vec![data.clone()]);
    let (got, path) = block_on(&net, call(&mut bench.spec, &net, &args)).unwrap();

    assert_eq!(got.arrays, want.arrays, "same echo through both lanes");
    assert_eq!(path, want_path);
    assert_eq!(path, PathUsed::Fast);
}

#[test]
fn async_batch_matches_the_blocking_batch() {
    let batchsize = 6;
    let mk = |bench: &EchoBench| -> Vec<_> {
        (0..batchsize)
            .map(|i| {
                bench
                    .spec
                    .args(vec![], vec![(0..16).map(|k| i * 100 + k).collect()])
            })
            .collect()
    };

    let mut blocking = EchoBench::new(16, None, 21).unwrap();
    let batch = mk(&blocking);
    let want = blocking.spec.call_batch(&batch).unwrap();

    let mut bench = EchoBench::new(16, None, 21).unwrap();
    let net = bench.net.clone();
    let batch = mk(&bench);
    let got = block_on(&net, call_batch(&mut bench.spec, &net, &batch)).unwrap();

    assert_eq!(got.len(), want.len());
    for ((g, gp), (w, wp)) in got.iter().zip(&want) {
        assert_eq!(g.arrays, w.arrays);
        assert_eq!(gp, wp);
    }
}

#[test]
fn async_retransmission_recovers_from_loss() {
    let lossy = FaultConfig {
        loss: 0.4,
        duplicate: 0.0,
        reorder: 0.0,
    };
    for seed in [11u64, 22, 33] {
        let net = Network::new(NetworkConfig::lan().with_faults(lossy), seed);
        let proc_ = Arc::new(build_echo_proc(16, None).unwrap());
        let _reg = echo_service(proc_.clone()).serve_udp(&net, ECHO_PORT);
        let clnt = ClntUdp::create(&net, 5000, ECHO_PORT, ECHO_PROG, ECHO_VERS);
        let mut spec = SpecClient::from_parts(clnt, proc_);
        let data: Vec<i32> = (0..16).collect();
        for _ in 0..8 {
            let args = spec.args(vec![], vec![data.clone()]);
            let fut = call(&mut spec, &net, &args)
                .with_timeouts(SimTime::from_millis(20), SimTime::from_millis(60_000));
            let (out, _) = block_on(&net, fut)
                .unwrap_or_else(|e| panic!("seed {seed}: async call under loss: {e}"));
            assert_eq!(out.arrays[0], data, "seed {seed}");
        }
    }
}

#[test]
fn async_call_serves_through_a_sharded_reactor_in_the_background() {
    let net = Network::new(NetworkConfig::lan(), 31);
    let proc_ = Arc::new(build_echo_proc(16, None).unwrap());
    let ports = [ECHO_PORT, ECHO_PORT + 1, ECHO_PORT + 2, ECHO_PORT + 3];
    let sharded = echo_service(proc_.clone()).serve_sharded(&net, &ports, 2, 0);
    let data: Vec<i32> = (0..16).collect();
    // One call per socket so both shards answer through the adapter.
    for (i, &port) in ports.iter().enumerate() {
        let clnt = ClntUdp::create(&net, 5100 + i as u32, port, ECHO_PROG, ECHO_VERS);
        let mut spec = SpecClient::from_parts(clnt, proc_.clone());
        let args = spec.args(vec![], vec![data.clone()]);
        let fut = with_background(call(&mut spec, &net, &args), serve(&sharded.reactor));
        let (out, _) = block_on(&net, fut).unwrap();
        assert_eq!(out.arrays[0], data);
    }
    assert_eq!(sharded.total_events(), ports.len() as u64);
    let per = sharded.per_shard_events();
    assert_eq!(per.iter().sum::<u64>(), ports.len() as u64);
    assert!(per.iter().all(|&e| e > 0), "both shards served: {per:?}");
}
