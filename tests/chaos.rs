//! Availability conformance for the chaos layer: the mid-run primary
//! crash of `run_chaos`, checked end to end.
//!
//! What must hold (the acceptance properties of the availability
//! study):
//!
//! - **availability** — with the resilience layer (deadlines, retry
//!   budgets, circuit breakers, replica failover) the deployment stays
//!   ≥ 99% available through a mid-run primary crash on a clean link,
//!   while the classic client population measurably degrades;
//! - **recovery** — failover reaches its first post-crash completion
//!   faster than waiting out the restart;
//! - **determinism** — a fixed `ChaosConfig` (schedule + seed) replays
//!   byte-identically: same report text, same histogram, same chaos
//!   accounting, run after run.

use specrpc::{run_chaos, run_chaos_matrix, ChaosConfig};
use specrpc_netsim::FaultConfig;

#[test]
fn failover_availability_holds_while_the_classic_client_degrades() {
    let reports = run_chaos_matrix(&ChaosConfig::smoke()).expect("chaos matrix");
    let (with, without) = (&reports[0], &reports[1]);
    assert!(with.failover && !without.failover);
    for r in &reports {
        assert_eq!(r.completed + r.failed, r.calls, "every call must settle");
    }
    assert!(
        with.availability_bp() >= 9_900,
        "failover availability must stay ≥ 99% through the crash: {} bp",
        with.availability_bp()
    );
    assert!(
        without.availability_bp() < with.availability_bp(),
        "the classic client must measurably degrade: {} vs {} bp",
        without.availability_bp(),
        with.availability_bp()
    );
    assert!(with.failovers > 0, "the crash must force failovers");
    assert!(with.breaker_trips > 0, "give-ups must trip breakers");
    assert_eq!(without.failovers, 0, "classic clients cannot fail over");
}

#[test]
fn failover_recovers_before_the_restart_does() {
    let reports = run_chaos_matrix(&ChaosConfig::smoke()).expect("chaos matrix");
    let with = reports[0].recovery.expect("failover run recovers");
    let without = reports[1]
        .recovery
        .expect("the restart eventually recovers");
    assert!(
        with < without,
        "failover recovery {with} must beat waiting out the restart {without}"
    );
}

#[test]
fn chaos_replay_is_byte_identical_across_runs() {
    for faults in [FaultConfig::NONE, FaultConfig::LOSSY] {
        for failover in [true, false] {
            let cfg = ChaosConfig::smoke()
                .with_faults(faults)
                .with_failover(failover);
            let a = run_chaos(&cfg).expect("chaos run");
            let b = run_chaos(&cfg).expect("chaos run");
            assert_eq!(
                a.render(),
                b.render(),
                "failover={failover}: reports must replay byte-identically"
            );
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.chaos, b.chaos);
        }
    }
}

#[test]
fn every_mode_observes_the_scheduled_crash_and_restart() {
    for r in run_chaos_matrix(&ChaosConfig::smoke()).expect("chaos matrix") {
        assert_eq!(r.chaos.crashes, 1, "{:?}", r.chaos);
        assert_eq!(r.chaos.restarts, 1, "{:?}", r.chaos);
        assert!(
            r.chaos.downtime >= ChaosConfig::smoke().crash_downtime,
            "downtime {} must cover the scheduled window",
            r.chaos.downtime
        );
        assert!(
            r.chaos.drops_down > 0,
            "retries into the outage must be dropped at the down host"
        );
    }
}
