//! Availability conformance for the chaos layer: the mid-run primary
//! crash of `run_chaos`, checked end to end.
//!
//! What must hold (the acceptance properties of the availability
//! study):
//!
//! - **availability** — with the resilience layer (deadlines, retry
//!   budgets, circuit breakers, replica failover) the deployment stays
//!   ≥ 99% available through a mid-run primary crash on a clean link,
//!   while the classic client population measurably degrades;
//! - **recovery** — failover reaches its first post-crash completion
//!   faster than waiting out the restart;
//! - **determinism** — a fixed `ChaosConfig` (schedule + seed) replays
//!   byte-identically: same report text, same histogram, same chaos
//!   accounting, run after run.

use specrpc::echo::{generic_encode_request, ECHO_IDL, ECHO_PROG, ECHO_VERS};
use specrpc::{run_chaos, run_chaos_matrix, ChaosConfig, ProcPipeline, SpecService};
use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_netsim::{ChaosSchedule, FaultConfig, SimTime};
use specrpc_rpc::ClntUdp;
use specrpc_tempo::compile::StubArgs;
use specrpc_xdr::mem::XdrMem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn failover_availability_holds_while_the_classic_client_degrades() {
    let reports = run_chaos_matrix(&ChaosConfig::smoke()).expect("chaos matrix");
    let (with, without) = (&reports[0], &reports[1]);
    assert!(with.failover && !without.failover);
    for r in &reports {
        assert_eq!(r.completed + r.failed, r.calls, "every call must settle");
    }
    assert!(
        with.availability_bp() >= 9_900,
        "failover availability must stay ≥ 99% through the crash: {} bp",
        with.availability_bp()
    );
    assert!(
        without.availability_bp() < with.availability_bp(),
        "the classic client must measurably degrade: {} vs {} bp",
        without.availability_bp(),
        with.availability_bp()
    );
    assert!(with.failovers > 0, "the crash must force failovers");
    assert!(with.breaker_trips > 0, "give-ups must trip breakers");
    assert_eq!(without.failovers, 0, "classic clients cannot fail over");
}

#[test]
fn failover_recovers_before_the_restart_does() {
    let reports = run_chaos_matrix(&ChaosConfig::smoke()).expect("chaos matrix");
    let with = reports[0].recovery.expect("failover run recovers");
    let without = reports[1]
        .recovery
        .expect("the restart eventually recovers");
    assert!(
        with < without,
        "failover recovery {with} must beat waiting out the restart {without}"
    );
}

#[test]
fn chaos_replay_is_byte_identical_across_runs() {
    for faults in [FaultConfig::NONE, FaultConfig::LOSSY] {
        for failover in [true, false] {
            let cfg = ChaosConfig::smoke()
                .with_faults(faults)
                .with_failover(failover);
            let a = run_chaos(&cfg).expect("chaos run");
            let b = run_chaos(&cfg).expect("chaos run");
            assert_eq!(
                a.render(),
                b.render(),
                "failover={failover}: reports must replay byte-identically"
            );
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.chaos, b.chaos);
        }
    }
}

#[test]
fn seeded_schedule_sweep_survives_random_outage_patterns() {
    // ROADMAP item 6 (seeded chaos sweep slice): `ChaosSchedule::seeded`
    // generates its crash/restart windows from its own RNG, so each seed
    // exercises a different outage pattern against the restartable
    // serving path. Across ≥ 4 seeds: every call completes, completed
    // replies are byte-identical to an undisturbed run, and amnesia
    // duplicates stay bounded (at-least-once, never at-will).
    const CALLS: usize = 16;
    const N: usize = 16;
    let horizon = SimTime::from_millis(40);
    let run = |seed: u64, schedule: Option<ChaosSchedule>| {
        let net = Network::new(NetworkConfig::lan(), seed);
        let runs = Arc::new(AtomicU64::new(0));
        let r = runs.clone();
        let proc_ = Arc::new(
            ProcPipeline::new(N)
                .build_from_idl(ECHO_IDL, None, 1)
                .expect("pipeline"),
        );
        let reg = SpecService::new()
            .proc(proc_, move |args: &StubArgs| {
                r.fetch_add(1, Ordering::Relaxed);
                StubArgs::new(vec![], vec![args.arrays[0].clone()])
            })
            .into_registry();
        specrpc_rpc::svc_udp::serve_udp_restartable(&net, 700, reg, None);
        if let Some(s) = &schedule {
            net.apply_chaos(s);
        }
        let mut clnt = ClntUdp::create(&net, 5000, 700, ECHO_PROG, ECHO_VERS);
        clnt.retry_timeout = SimTime::from_millis(2);
        clnt.total_timeout = SimTime::from_millis(60_000);
        let mut replies = Vec::new();
        for i in 0..CALLS {
            let xid = clnt.next_xid();
            let mut enc = XdrMem::encoder(1 << 16);
            let mut data: Vec<i32> = (0..N).map(|k| (i * 100 + k) as i32).collect();
            generic_encode_request(&mut enc, xid, &mut data).expect("encode");
            let reply = clnt
                .exchange(&enc.into_bytes(), xid)
                .unwrap_or_else(|e| panic!("seed {seed} call {i}: {e}"));
            replies.push(reply);
            // Pace the sequence across the horizon so the seeded crash
            // windows land between calls, not only at the start.
            net.advance(SimTime::from_nanos(horizon.as_nanos() / CALLS as u64));
        }
        (replies, runs.load(Ordering::Relaxed), net.now())
    };
    for seed in [101u64, 202, 303, 404, 505] {
        let schedule = ChaosSchedule::seeded(seed, &[700], horizon, 3);
        let (clean, clean_runs, clean_end) = run(seed, None);
        let (chaotic, chaotic_runs, chaotic_end) = run(seed, Some(schedule));
        assert_eq!(clean_runs, CALLS as u64, "seed {seed}");
        assert_eq!(
            chaotic, clean,
            "seed {seed}: completed replies must match the undisturbed run"
        );
        assert!(
            chaotic_runs >= CALLS as u64 && chaotic_runs <= CALLS as u64 + 6,
            "seed {seed}: at-least-once with bounded amnesia duplicates: {chaotic_runs} runs"
        );
        assert!(
            chaotic_end >= clean_end,
            "seed {seed}: outages can only cost virtual time"
        );
    }
}

#[test]
fn every_mode_observes_the_scheduled_crash_and_restart() {
    for r in run_chaos_matrix(&ChaosConfig::smoke()).expect("chaos matrix") {
        assert_eq!(r.chaos.crashes, 1, "{:?}", r.chaos);
        assert_eq!(r.chaos.restarts, 1, "{:?}", r.chaos);
        assert!(
            r.chaos.downtime >= ChaosConfig::smoke().crash_downtime,
            "downtime {} must cover the scheduled window",
            r.chaos.downtime
        );
        assert!(
            r.chaos.drops_down > 0,
            "retries into the outage must be dropped at the down host"
        );
    }
}
