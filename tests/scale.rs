//! The million-client acceptance scenario at CI scale: the open-loop
//! run is executed twice at a reduced endpoint count and its rendered
//! report must be byte-identical (fixed seed ⇒ identical Summary
//! tables), with every client answered exactly once.
//!
//! `SPECRPC_SCALE_CLIENTS` scales the endpoint count (default 2 000;
//! the smoke-scale CI job raises it in release builds). The arrival
//! window scales proportionally, so offered load — and therefore the
//! latency distribution's shape — is comparable across sizes.

use specrpc::{run_scale, run_scale_single_shard, ScaleConfig};

fn clients() -> usize {
    std::env::var("SPECRPC_SCALE_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

fn ci_config() -> ScaleConfig {
    ScaleConfig::million().scaled_to(clients())
}

#[test]
fn scaled_million_client_scenario_is_deterministic() {
    let cfg = ci_config();
    let a = specrpc::scenario::run_scale(&cfg).unwrap();
    let b = specrpc::scenario::run_scale(&cfg).unwrap();
    assert_eq!(
        a.render(),
        b.render(),
        "fixed seed must render byte-identical Summary tables"
    );
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.per_shard, b.per_shard);
    assert_eq!(a.elapsed, b.elapsed);
}

#[test]
fn scaled_million_client_scenario_answers_every_endpoint() {
    let cfg = ci_config();
    let report = specrpc::run_scale(&cfg).unwrap();
    assert_eq!(report.replies, cfg.clients as u64, "no lost replies");
    assert_eq!(report.timeouts, 0);
    assert_eq!(report.latency.count(), cfg.clients as u64);
    assert_eq!(
        report.per_shard.iter().sum::<u64>(),
        cfg.clients as u64,
        "each request dispatched exactly once across the shard map"
    );
    assert_eq!(report.per_shard.len(), cfg.shards);
    assert!(
        report.per_shard.iter().all(|&e| e > 0),
        "zipf traffic must reach every shard: {:?}",
        report.per_shard
    );
    // The tail is measurable: p999 at least p50, max at least p999.
    let (p50, p999) = (report.latency.p50(), report.latency.p999());
    assert!(p999 >= p50);
    assert!(report.latency.max() >= p999);
}

#[test]
fn shard_map_width_does_not_change_the_measured_distribution() {
    // The full scenario through 1 shard vs the configured 8: identical
    // latency histograms and clocks — sharding moves ownership, never
    // delivery order, in single-driver mode.
    let mut cfg = ci_config();
    cfg.clients = cfg.clients.min(500);
    let many = run_scale(&cfg).unwrap();
    let one = run_scale_single_shard(&cfg).unwrap();
    assert_eq!(one.latency, many.latency);
    assert_eq!(one.elapsed, many.elapsed);
    assert_eq!(one.replies, many.replies);
}
