//! Fault-injection conformance matrix: seeded loss / duplication /
//! reordering, over both transports, with at least 3 seeds per
//! configuration.
//!
//! What must hold (the retransmission cost the paper's tables model, made
//! into conformance properties):
//!
//! - **UDP**: every call completes under faults; loss forces
//!   retransmissions (observable via `ClntUdp::retransmits`); the reply
//!   *bytes* are identical to a fault-free run of the same call sequence
//!   (same xids, same data); and the user handler executes **exactly
//!   once per transaction** even when the network duplicates request
//!   datagrams — the server's duplicate-request cache replays, it never
//!   re-dispatches.
//! - **TCP**: the stream is modeled as a reliable pipe below the fault
//!   layer, so the *same seed* produces byte- and time-identical TCP
//!   traces with faults on or off, and TCP traffic never consumes the
//!   seeded UDP fault stream (regression for `FaultState::judge`
//!   duplicate verdicts being a UDP-only concept).

use specrpc::echo::{generic_encode_request, ECHO_IDL, ECHO_PROG, ECHO_VERS};
use specrpc::{ProcPipeline, SpecService};
use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_netsim::{ChaosSchedule, FaultConfig, SimTime};
use specrpc_rpc::{ClntTcp, ClntUdp, Transport};
use specrpc_tempo::compile::StubArgs;
use specrpc_xdr::mem::XdrMem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const N: usize = 24;
const CALLS: usize = 12;
const SEEDS: [u64; 3] = [11, 22, 33];

fn configs() -> Vec<(&'static str, FaultConfig)> {
    vec![
        (
            "loss",
            FaultConfig {
                loss: 0.25,
                duplicate: 0.0,
                reorder: 0.0,
            },
        ),
        (
            "duplicate",
            FaultConfig {
                loss: 0.0,
                duplicate: 0.3,
                reorder: 0.0,
            },
        ),
        (
            "reorder",
            FaultConfig {
                loss: 0.0,
                duplicate: 0.0,
                reorder: 0.3,
            },
        ),
        ("mixed", FaultConfig::LOSSY),
    ]
}

struct RunResult {
    replies: Vec<Vec<u8>>,
    retransmits: u64,
    handler_runs: u64,
    end_time: SimTime,
}

/// Deploy the counting echo service on `net` over both transports.
fn deploy(net: &Network, udp_port: u32, tcp_port: u32) -> Arc<AtomicU64> {
    let runs = Arc::new(AtomicU64::new(0));
    let r = runs.clone();
    let proc_ = Arc::new(
        ProcPipeline::new(N)
            .build_from_idl(ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let service = SpecService::new().proc(proc_, move |args: &StubArgs| {
        r.fetch_add(1, Ordering::Relaxed);
        StubArgs::new(vec![], vec![args.arrays[0].clone()])
    });
    let reg = service.into_registry();
    specrpc_rpc::svc_udp::serve_udp(net, udp_port, reg.clone(), None);
    specrpc_rpc::svc_tcp::serve_tcp(net, tcp_port, reg, None);
    runs
}

fn call_data(i: usize) -> Vec<i32> {
    (0..N).map(|k| (i * 1000 + k) as i32).collect()
}

fn run_udp(cfg: FaultConfig, seed: u64) -> RunResult {
    let net = Network::new(NetworkConfig::lan().with_faults(cfg), seed);
    let runs = deploy(&net, 700, 701);
    drive_udp(&net, runs)
}

/// Like [`run_udp`] but serving through the event-driven reactor
/// (`serve_event`, one worker) instead of the blocking handler slot.
fn run_udp_event(cfg: FaultConfig, seed: u64) -> RunResult {
    let net = Network::new(NetworkConfig::lan().with_faults(cfg), seed);
    let runs = Arc::new(AtomicU64::new(0));
    let r = runs.clone();
    let proc_ = Arc::new(
        ProcPipeline::new(N)
            .build_from_idl(ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let service = SpecService::new()
        .proc(proc_, move |args: &StubArgs| {
            r.fetch_add(1, Ordering::Relaxed);
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .serve_event(&net, 700, 1);
    let result = drive_udp(&net, runs);
    drop(service);
    result
}

/// The shared client driver: CALLS sequential exchanges against the UDP
/// service at port 700.
fn drive_udp(net: &Network, runs: Arc<AtomicU64>) -> RunResult {
    let mut clnt = ClntUdp::create(net, 5000, 700, ECHO_PROG, ECHO_VERS);
    clnt.retry_timeout = SimTime::from_millis(20);
    clnt.total_timeout = SimTime::from_millis(60_000);
    let mut replies = Vec::new();
    for i in 0..CALLS {
        let xid = clnt.next_xid();
        let mut enc = XdrMem::encoder(1 << 16);
        let mut data = call_data(i);
        generic_encode_request(&mut enc, xid, &mut data).expect("encode");
        let reply = clnt
            .exchange(&enc.into_bytes(), xid)
            .unwrap_or_else(|e| panic!("call {i} under faults: {e}"));
        replies.push(reply);
    }
    RunResult {
        replies,
        retransmits: clnt.retransmits,
        handler_runs: runs.load(Ordering::Relaxed),
        end_time: net.now(),
    }
}

/// Like [`run_udp`] but serving **restartably** with a crash/restart
/// window armed mid-sequence: the server loses its mailbox and its
/// duplicate-request cache at `crash_at` and comes back `downtime`
/// later with a fresh (amnesiac) cache.
fn run_udp_chaos(cfg: FaultConfig, seed: u64, crash_at: SimTime, downtime: SimTime) -> RunResult {
    let net = Network::new(NetworkConfig::lan().with_faults(cfg), seed);
    let runs = Arc::new(AtomicU64::new(0));
    let r = runs.clone();
    let proc_ = Arc::new(
        ProcPipeline::new(N)
            .build_from_idl(ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let reg = SpecService::new()
        .proc(proc_, move |args: &StubArgs| {
            r.fetch_add(1, Ordering::Relaxed);
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .into_registry();
    specrpc_rpc::svc_udp::serve_udp_restartable(&net, 700, reg, None);
    net.apply_chaos(&ChaosSchedule::new().crash_window(700, crash_at, downtime));
    drive_udp(&net, runs)
}

fn run_tcp(cfg: FaultConfig, seed: u64) -> RunResult {
    let net = Network::new(NetworkConfig::lan().with_faults(cfg), seed);
    let runs = deploy(&net, 700, 701);
    let mut clnt = ClntTcp::create(&net, 701, ECHO_PROG, ECHO_VERS).expect("connect");
    let mut replies = Vec::new();
    for i in 0..CALLS {
        let xid = Transport::next_xid(&mut clnt);
        let mut enc = XdrMem::encoder(1 << 16);
        let mut data = call_data(i);
        generic_encode_request(&mut enc, xid, &mut data).expect("encode");
        let reply =
            Transport::call(&mut clnt, &enc.into_bytes(), xid).unwrap_or_else(|e| panic!("{e}"));
        replies.push(reply);
    }
    RunResult {
        replies,
        retransmits: 0,
        handler_runs: runs.load(Ordering::Relaxed),
        end_time: net.now(),
    }
}

#[test]
fn udp_fault_matrix_is_exactly_once_and_byte_identical() {
    for (name, cfg) in configs() {
        for seed in SEEDS {
            let clean = run_udp(FaultConfig::NONE, seed);
            let faulty = run_udp(cfg, seed);
            assert_eq!(
                clean.retransmits, 0,
                "{name}/{seed}: fault-free run must not retransmit"
            );
            assert_eq!(
                faulty.replies, clean.replies,
                "{name}/{seed}: reply bytes must match the fault-free run"
            );
            assert_eq!(
                faulty.handler_runs, CALLS as u64,
                "{name}/{seed}: handler must run exactly once per transaction"
            );
            assert_eq!(clean.handler_runs, CALLS as u64);
            if name == "loss" || name == "mixed" {
                assert!(
                    faulty.retransmits > 0,
                    "{name}/{seed}: loss must force retransmissions"
                );
                assert!(
                    faulty.end_time > clean.end_time,
                    "{name}/{seed}: retransmission must cost virtual time"
                );
            }
        }
    }
}

#[test]
fn udp_duplicated_datagrams_execute_handlers_exactly_once() {
    // Every datagram duplicated: the duplicate-request cache must absorb
    // the second delivery of each request — one handler run per call.
    let every_dup = FaultConfig {
        loss: 0.0,
        duplicate: 1.0,
        reorder: 0.0,
    };
    for seed in SEEDS {
        let r = run_udp(every_dup, seed);
        assert_eq!(
            r.handler_runs, CALLS as u64,
            "seed {seed}: duplicates must replay, not re-dispatch"
        );
        let clean = run_udp(FaultConfig::NONE, seed);
        assert_eq!(r.replies, clean.replies, "seed {seed}");
    }
}

#[test]
fn udp_event_reactor_fault_matrix_matches_the_blocking_path() {
    // The whole matrix again through `serve_event`: every conformance
    // property of the blocking path must survive the reactor — and the
    // traces must be IDENTICAL between the two serving modes (bytes,
    // handler runs, retransmits, and the virtual clock), because with a
    // single driver the event core is just a re-staging of the same
    // dispatch at the same virtual instants.
    for (name, cfg) in configs() {
        for seed in SEEDS {
            let blocking = run_udp(cfg, seed);
            let event = run_udp_event(cfg, seed);
            assert_eq!(
                event.replies, blocking.replies,
                "{name}/{seed}: reply bytes must match the blocking path"
            );
            assert_eq!(
                event.end_time, blocking.end_time,
                "{name}/{seed}: virtual time must match the blocking path"
            );
            assert_eq!(event.retransmits, blocking.retransmits, "{name}/{seed}");
            assert_eq!(
                event.handler_runs, CALLS as u64,
                "{name}/{seed}: handler must run exactly once per transaction"
            );
        }
    }
}

#[test]
fn udp_event_reactor_duplicates_execute_handlers_exactly_once() {
    let every_dup = FaultConfig {
        loss: 0.0,
        duplicate: 1.0,
        reorder: 0.0,
    };
    for seed in SEEDS {
        let r = run_udp_event(every_dup, seed);
        assert_eq!(
            r.handler_runs, CALLS as u64,
            "seed {seed}: duplicates must replay, not re-dispatch"
        );
        let clean = run_udp_event(FaultConfig::NONE, seed);
        assert_eq!(r.replies, clean.replies, "seed {seed}");
    }
}

#[test]
fn crash_restart_matrix_completed_calls_stay_byte_identical() {
    // The whole fault matrix again, now with the server crashing
    // mid-sequence and restarting 50 ms later. A patient client
    // (total timeout ≫ downtime) must ride out the outage: every call
    // completes, and the completed replies are byte-identical to a
    // fault-free, chaos-free run of the same call sequence — the crash
    // may cost time and duplicate executions, never data.
    let crash_at = SimTime::from_micros(500);
    let downtime = SimTime::from_millis(50);
    for (name, cfg) in configs() {
        for seed in SEEDS {
            let clean = run_udp(FaultConfig::NONE, seed);
            let chaotic = run_udp_chaos(cfg, seed, crash_at, downtime);
            assert_eq!(
                chaotic.replies, clean.replies,
                "{name}/{seed}: completed calls must match the fault-free run"
            );
            assert!(
                chaotic.retransmits > 0,
                "{name}/{seed}: the outage must force retransmissions"
            );
            assert!(
                chaotic.end_time > clean.end_time,
                "{name}/{seed}: the downtime must cost virtual time"
            );
            // Exactly-once degrades to at-least-once across the wipe:
            // never fewer runs than calls, and the surplus is bounded by
            // the requests the crash could have caught executed-but-
            // unreplied (the in-flight call, plus a stray duplicate).
            assert!(
                chaotic.handler_runs >= CALLS as u64,
                "{name}/{seed}: at-least-once must hold: {} runs",
                chaotic.handler_runs
            );
            assert!(
                chaotic.handler_runs <= CALLS as u64 + 4,
                "{name}/{seed}: amnesia duplicates stay bounded: {} runs",
                chaotic.handler_runs
            );
        }
    }
}

#[test]
fn restart_amnesia_duplicate_execution_count_is_exact() {
    // The duplicate-execution mechanism, pinned deterministically: a
    // completed call replayed across a crash/restart re-executes
    // exactly once (the restarted cache is empty), returns the same
    // bytes, and the rebuilt cache absorbs further replays.
    let net = Network::new(NetworkConfig::lan(), 5);
    let runs = Arc::new(AtomicU64::new(0));
    let r = runs.clone();
    let proc_ = Arc::new(
        ProcPipeline::new(N)
            .build_from_idl(ECHO_IDL, None, 1)
            .expect("pipeline"),
    );
    let reg = SpecService::new()
        .proc(proc_, move |args: &StubArgs| {
            r.fetch_add(1, Ordering::Relaxed);
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .into_registry();
    specrpc_rpc::svc_udp::serve_udp_restartable(&net, 700, reg, None);

    let mut clnt = ClntUdp::create(&net, 5000, 700, ECHO_PROG, ECHO_VERS);
    clnt.retry_timeout = SimTime::from_millis(20);
    clnt.total_timeout = SimTime::from_millis(60_000);
    let xid = clnt.next_xid();
    let mut enc = XdrMem::encoder(1 << 16);
    let mut data = call_data(0);
    generic_encode_request(&mut enc, xid, &mut data).expect("encode");
    let request = enc.into_bytes();

    let first = clnt.exchange(&request, xid).expect("first call");
    assert_eq!(runs.load(Ordering::Relaxed), 1);

    net.crash(700);
    net.restart(700);
    let second = clnt.exchange(&request, xid).expect("replay across restart");
    assert_eq!(
        runs.load(Ordering::Relaxed),
        2,
        "the wiped cache must re-execute the replayed request"
    );
    assert_eq!(second, first, "re-execution must produce identical bytes");

    let third = clnt
        .exchange(&request, xid)
        .expect("same-incarnation replay");
    assert_eq!(
        runs.load(Ordering::Relaxed),
        2,
        "the rebuilt cache must absorb the replay without re-executing"
    );
    assert_eq!(third, first);
}

/// Like [`drive_udp`] but through a coalescing client: every sync call
/// is preceded by three one-way calls, so each round normally rides the
/// wire as ONE sealed envelope (3 one-way + 1 reply-expected message)
/// whose sync reply acknowledges the pipeline.
fn drive_coalesced(
    net: &Network,
    runs: Arc<AtomicU64>,
    policy: specrpc_rpc::CoalescePolicy,
) -> RunResult {
    let mut clnt = ClntUdp::create(net, 5000, 700, ECHO_PROG, ECHO_VERS).with_coalescing(policy);
    clnt.retry_timeout = SimTime::from_millis(20);
    clnt.total_timeout = SimTime::from_millis(60_000);
    let mut replies = Vec::new();
    for i in 0..CALLS {
        for j in 0..3 {
            let xid = clnt.next_xid();
            let mut enc = XdrMem::encoder(1 << 16);
            let mut data = call_data(i * 10 + j + 100);
            generic_encode_request(&mut enc, xid, &mut data).expect("encode");
            clnt.call_oneway(&enc.into_bytes(), xid)
                .unwrap_or_else(|e| panic!("one-way {i}/{j} under faults: {e}"));
        }
        let xid = clnt.next_xid();
        let mut enc = XdrMem::encoder(1 << 16);
        let mut data = call_data(i);
        generic_encode_request(&mut enc, xid, &mut data).expect("encode");
        let reply = clnt
            .exchange(&enc.into_bytes(), xid)
            .unwrap_or_else(|e| panic!("sync call {i} under faults: {e}"));
        replies.push(reply);
    }
    RunResult {
        replies,
        retransmits: clnt.retransmits,
        handler_runs: runs.load(Ordering::Relaxed),
        end_time: net.now(),
    }
}

fn run_coalesced(cfg: FaultConfig, seed: u64, policy: specrpc_rpc::CoalescePolicy) -> RunResult {
    let net = Network::new(NetworkConfig::lan().with_faults(cfg), seed);
    let runs = deploy(&net, 700, 701);
    drive_coalesced(&net, runs, policy)
}

#[test]
fn coalesced_fault_matrix_replies_match_the_uncoalesced_path() {
    // The coalesced path under the whole fault matrix: sync replies are
    // byte-identical to (a) a fault-free coalesced run and (b) the
    // one-datagram-per-call baseline with the same xid stream — packing
    // sub-messages into envelopes changes wire economics, never bytes.
    // And every message (one-way or sync) still executes exactly once:
    // a retransmitting sync call replays its unacknowledged envelopes,
    // and the server's dup cache absorbs every inner xid.
    let messages = (CALLS * 4) as u64;
    for (name, cfg) in configs() {
        for seed in SEEDS {
            let clean = run_coalesced(
                FaultConfig::NONE,
                seed,
                specrpc_rpc::CoalescePolicy::ethernet(),
            );
            let per_call = run_coalesced(
                FaultConfig::NONE,
                seed,
                specrpc_rpc::CoalescePolicy::per_call(),
            );
            let faulty = run_coalesced(cfg, seed, specrpc_rpc::CoalescePolicy::ethernet());
            assert_eq!(clean.retransmits, 0, "{name}/{seed}");
            assert_eq!(
                faulty.replies, clean.replies,
                "{name}/{seed}: coalesced replies must match the fault-free run"
            );
            assert_eq!(
                per_call.replies, clean.replies,
                "{name}/{seed}: packing must not change reply bytes"
            );
            assert_eq!(
                faulty.handler_runs, messages,
                "{name}/{seed}: every sub-message exactly once"
            );
            assert_eq!(clean.handler_runs, messages, "{name}/{seed}");
            assert_eq!(per_call.handler_runs, messages, "{name}/{seed}");
            if name == "loss" || name == "mixed" {
                assert!(
                    faulty.retransmits > 0,
                    "{name}/{seed}: loss must force envelope replays"
                );
            }
        }
    }
}

#[test]
fn coalesced_envelopes_duplicated_execute_handlers_exactly_once() {
    // Satellite regression: a retransmitted/duplicated *coalesced*
    // datagram replays every inner xid through the duplicate-request
    // cache — the handlers never re-execute. With every datagram
    // duplicated, each envelope's second delivery unpacks to all-hit
    // cache replays (one-way replays are re-cached, not re-sent).
    let every_dup = FaultConfig {
        loss: 0.0,
        duplicate: 1.0,
        reorder: 0.0,
    };
    let messages = (CALLS * 4) as u64;
    for seed in SEEDS {
        let r = run_coalesced(every_dup, seed, specrpc_rpc::CoalescePolicy::ethernet());
        assert_eq!(
            r.handler_runs, messages,
            "seed {seed}: duplicated envelopes must replay, not re-dispatch"
        );
        let clean = run_coalesced(
            FaultConfig::NONE,
            seed,
            specrpc_rpc::CoalescePolicy::ethernet(),
        );
        assert_eq!(r.replies, clean.replies, "seed {seed}");
    }
}

#[test]
fn tcp_trace_is_byte_and_time_identical_under_faults() {
    // Satellite regression: `FaultState::judge()` verdicts (including
    // Duplicate) apply to UDP datagrams only. The TCP model is a reliable
    // ordered pipe *below* the fault layer, so the whole matrix — loss,
    // duplication, reordering — must leave the TCP byte stream AND its
    // virtual-time trace untouched: same replies, same clock, exactly one
    // handler run per record.
    for (name, cfg) in configs() {
        for seed in SEEDS {
            let clean = run_tcp(FaultConfig::NONE, seed);
            let faulty = run_tcp(cfg, seed);
            assert_eq!(
                faulty.replies, clean.replies,
                "{name}/{seed}: TCP replies must be byte-identical"
            );
            assert_eq!(
                faulty.end_time, clean.end_time,
                "{name}/{seed}: TCP timing must be unaffected by the fault model"
            );
            assert_eq!(faulty.handler_runs, CALLS as u64, "{name}/{seed}");
        }
    }
}

#[test]
fn tcp_traffic_does_not_consume_the_udp_fault_stream() {
    // The seeded verdict stream is a per-network resource; if TCP sends
    // consumed verdicts, UDP loss patterns would shift whenever TCP
    // traffic interleaves. Pin: the UDP survivor pattern is the same
    // whether or not TCP traffic ran first on the same seed.
    let cfg = FaultConfig {
        loss: 0.5,
        duplicate: 0.0,
        reorder: 0.0,
    };
    let survivor_pattern = |with_tcp: bool| -> Vec<bool> {
        let net = Network::new(NetworkConfig::lan().with_faults(cfg), 77);
        deploy(&net, 700, 701);
        if with_tcp {
            let mut clnt = ClntTcp::create(&net, 701, ECHO_PROG, ECHO_VERS).expect("connect");
            for i in 0..5 {
                let xid = Transport::next_xid(&mut clnt);
                let mut enc = XdrMem::encoder(1 << 16);
                let mut data = call_data(i);
                generic_encode_request(&mut enc, xid, &mut data).expect("encode");
                Transport::call(&mut clnt, &enc.into_bytes(), xid).expect("tcp call");
            }
        }
        let a = net.bind_udp(6000);
        let b = net.bind_udp(6001);
        (0..40u8)
            .map(|i| {
                a.send_to(6001, vec![i]);
                b.recv_timeout(SimTime::from_millis(5)).is_some()
            })
            .collect()
    };
    let without = survivor_pattern(false);
    let with = survivor_pattern(true);
    assert!(
        without.iter().any(|d| *d) && without.iter().any(|d| !*d),
        "pattern must mix losses and deliveries: {without:?}"
    );
    assert_eq!(
        with, without,
        "TCP traffic must not perturb the UDP fault stream"
    );
}
