//! The zero-copy wire path, end to end: (1) the fused zero-copy decode
//! lane is value-identical to the generic layered lane for arbitrary
//! shapes, and (2) a pooled specialized UDP round trip performs **zero
//! wire-path heap allocations per call** once warm — the paper's §3 copy
//! elimination carried to its logical end (no copies that can be borrowed
//! away, no allocations that can be recycled away).

use proptest::prelude::*;
use specrpc::echo::{workload, ECHO_IDL, ECHO_PROC, ECHO_PROG, ECHO_VERS};
use specrpc::generic::decode_shape_generic;
use specrpc::{PathUsed, ProcPipeline, SpecClient, SpecService, Summary};
use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_rpc::msg::ReplyHeader;
use specrpc_rpc::svc_udp::serve_udp_with_cache;
use specrpc_rpc::ClntUdp;
use specrpc_rpcgen::sunlib::reply_fields;
use specrpc_tempo::compile::{run_decode, run_encode, Outcome, StubArgs};
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::{OpCounts, XdrStream};
use std::sync::Arc;

/// Deploy the echo service and a pool-sharing specialized client; the
/// small duplicate-request cache keeps the warm-up window short.
fn pooled_echo(n: usize, seed: u64) -> (Network, SpecClient<ClntUdp>) {
    let proc_ = Arc::new(
        ProcPipeline::new(n)
            .build_from_idl(ECHO_IDL, None, ECHO_PROC)
            .unwrap(),
    );
    let net = Network::new(NetworkConfig::lan(), seed);
    let reg = SpecService::new()
        .proc(proc_.clone(), |args: &StubArgs| {
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .into_registry();
    serve_udp_with_cache(&net, 910, reg.clone(), None, 4);
    let clnt = ClntUdp::create_pooled(&net, 5600, 910, ECHO_PROG, ECHO_VERS, reg.pool().clone());
    (net, SpecClient::from_parts(clnt, proc_))
}

#[test]
fn pooled_specialized_round_trip_allocates_zero_after_warmup() {
    let n = 200;
    let (_net, mut client) = pooled_echo(n, 17);
    let data = workload(n);
    let args = client.args(vec![], vec![data.clone()]);
    let mut out = StubArgs::default();

    // Warm-up: first calls fill the wire-buffer pool, the client's
    // request buffer, the result slots, and the duplicate-request cache
    // (whose evictions start feeding buffers back once it is full).
    for _ in 0..10 {
        let path = client.call_into(&args, &mut out).unwrap();
        assert_eq!(path, PathUsed::Fast);
        assert_eq!(out.arrays[0], data);
    }
    assert!(
        client.counts.heap_allocs > 0,
        "warm-up performs the one-time allocations"
    );

    // Steady state: every buffer is recycled, every slot reused — the
    // wire path is allocation-free, which is the acceptance bar for the
    // pooled zero-copy lane.
    let (allocs_before, calls_before) = (client.counts.heap_allocs, client.calls);
    for round in 0..25 {
        let path = client.call_into(&args, &mut out).unwrap();
        assert_eq!(path, PathUsed::Fast, "round {round}");
        assert_eq!(out.arrays[0], data, "round {round}");
    }
    let steady = client.counts.heap_allocs - allocs_before;
    assert_eq!(
        steady,
        0,
        "allocs per call must be 0 after warm-up (got {steady} over {} calls)",
        client.calls - calls_before
    );

    // The Summary line reports the profile the counter just proved,
    // including the shared pool's counters (overflow drops visible).
    let pool_stats = client.transport_mut().pool().stats();
    let text = Summary::default()
        .with_wire(client.counts, client.calls, Some(pool_stats), None)
        .render();
    assert!(text.contains("wire path"), "{text}");
    assert!(text.contains("buffer pool"), "{text}");
    assert!(text.contains("overflow drop(s)"), "{text}");
}

#[test]
fn event_reactor_keeps_the_wire_path_allocation_free() {
    // The same steady-state bar under `serve_event`: the reactor (and
    // the driver's work stealing) dispatch through the same pooled path,
    // so once warm a specialized round trip still performs zero
    // wire-path heap allocations — batched or one at a time.
    use specrpc_rpc::svc_event::serve_udp_event_with_cache;
    let n = 200;
    let proc_ = Arc::new(
        ProcPipeline::new(n)
            .build_from_idl(ECHO_IDL, None, ECHO_PROC)
            .unwrap(),
    );
    let net = Network::new(NetworkConfig::lan(), 23);
    let reg = SpecService::new()
        .proc(proc_.clone(), |args: &StubArgs| {
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .into_registry();
    let reactor = serve_udp_event_with_cache(&net, 912, reg.clone(), 1, None, 4);
    let clnt = ClntUdp::create_pooled(&net, 5602, 912, ECHO_PROG, ECHO_VERS, reg.pool().clone());
    let mut client = SpecClient::from_parts(clnt, proc_);

    let data = workload(n);
    let args = client.args(vec![], vec![data.clone()]);
    let mut out = StubArgs::default();
    // Warm-up: pool, request buffer, result slots, dup cache.
    for _ in 0..10 {
        let path = client.call_into(&args, &mut out).unwrap();
        assert_eq!(path, PathUsed::Fast);
        assert_eq!(out.arrays[0], data);
    }
    let allocs_before = client.counts.heap_allocs;
    for round in 0..25 {
        let path = client.call_into(&args, &mut out).unwrap();
        assert_eq!(path, PathUsed::Fast, "round {round}");
        assert_eq!(out.arrays[0], data, "round {round}");
    }
    assert_eq!(
        client.counts.heap_allocs - allocs_before,
        0,
        "the reactor must preserve the allocation-free steady state"
    );

    // Batched steady state too: warm batch slots, then pin zero allocs.
    let batch: Vec<StubArgs> = (0..4)
        .map(|_| client.args(vec![], vec![data.clone()]))
        .collect();
    let mut outs: Vec<StubArgs> = (0..4).map(|_| StubArgs::default()).collect();
    for _ in 0..6 {
        client.call_batch_into(&batch, &mut outs).unwrap();
    }
    let allocs_before = client.counts.heap_allocs;
    for _ in 0..10 {
        let paths = client.call_batch_into(&batch, &mut outs).unwrap();
        assert!(paths.iter().all(|p| *p == PathUsed::Fast));
        assert!(outs.iter().all(|o| o.arrays[0] == data));
    }
    assert_eq!(
        client.counts.heap_allocs - allocs_before,
        0,
        "a warm pipelined batch must allocate nothing on the wire path"
    );
    assert!(reactor.total_events() >= 35);
}

#[test]
fn retransmission_reuses_the_request_image_without_rebuilding() {
    // A server slower than the per-try timeout forces a retransmission on
    // every call (the dup cache replays, so semantics stay exactly-once).
    // Retries re-send the rewound pooled request image instead of cloning
    // it — with no packet loss every buffer stays in the recycle loop, so
    // even a permanently-retransmitting client allocates nothing once
    // warm. (Under real loss, dropped datagrams do leak buffers out of
    // the cycle — those allocations are honest NIC-refill costs.)
    use specrpc_netsim::SimTime;
    let n = 50;
    let proc_ = Arc::new(
        ProcPipeline::new(n)
            .build_from_idl(ECHO_IDL, None, ECHO_PROC)
            .unwrap(),
    );
    let net = Network::new(NetworkConfig::lan(), 4242);
    let reg = SpecService::new()
        .proc(proc_.clone(), |args: &StubArgs| {
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        })
        .into_registry();
    serve_udp_with_cache(
        &net,
        911,
        reg.clone(),
        Some(Arc::new(|_, _| SimTime::from_millis(30))),
        8,
    );
    let mut clnt =
        ClntUdp::create_pooled(&net, 5601, 911, ECHO_PROG, ECHO_VERS, reg.pool().clone());
    clnt.retry_timeout = SimTime::from_millis(20);
    clnt.total_timeout = SimTime::from_millis(2_000);
    let mut client = SpecClient::from_parts(clnt, proc_);

    let data = workload(n);
    let args = client.args(vec![], vec![data.clone()]);
    let mut out = StubArgs::default();
    for _ in 0..15 {
        client.call_into(&args, &mut out).unwrap();
        assert_eq!(out.arrays[0], data);
    }
    let retransmits_warm = client.transport_mut().retransmits;
    assert!(retransmits_warm > 0, "slow server must have forced retries");

    // Steady state: retransmissions keep happening, allocations do not.
    let before = client.counts.heap_allocs;
    for _ in 0..20 {
        client.call_into(&args, &mut out).unwrap();
        assert_eq!(out.arrays[0], data);
    }
    assert!(
        client.transport_mut().retransmits > retransmits_warm,
        "still retransmitting in the measured window"
    );
    assert_eq!(
        client.counts.heap_allocs, before,
        "retransmissions must not allocate once the pool is warm"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The zero-copy decode lane (fused bulk plan over the received
    /// bytes) produces results structurally identical to the generic
    /// `XdrStream` lane for arbitrary payloads and sizes.
    #[test]
    fn zero_copy_decode_lane_matches_generic_lane(
        data in prop::collection::vec(any::<i32>(), 1..300),
        xid in any::<u32>(),
    ) {
        let n = data.len();
        let proc_ = ProcPipeline::new(n).build_from_idl(ECHO_IDL, None, ECHO_PROC).unwrap();

        // A reply wire image, produced by the server-side encode stub.
        let enc = &proc_.server_encode;
        let mut reply = vec![0u8; enc.wire_len];
        let mut counts = OpCounts::new();
        let mut full = StubArgs::new(vec![xid as i32], vec![data.clone()]);
        full.scalars.truncate(1);
        let r = run_encode(&enc.program, &mut reply, &full, &mut counts).unwrap();
        prop_assert!(matches!(r, Outcome::Done { ret: 1, .. }));

        // Lane 1: zero-copy fused decode.
        let dec = &proc_.client_decode;
        let mut fast = StubArgs::new(
            vec![0; dec.layout.scalar_count as usize],
            vec![Vec::new(); dec.layout.array_count as usize],
        );
        let r = run_decode(&dec.program, &reply, &mut fast, reply.len(), &mut counts).unwrap();
        prop_assert!(matches!(r, Outcome::Done { ret: 1, .. }));

        // Lane 2: the layered generic decoder over the same bytes.
        let mut gx = XdrMem::decoder(&reply);
        let hdr = ReplyHeader::decode(&mut gx).unwrap();
        prop_assert_eq!(hdr.xid, xid);
        let mut slow = StubArgs::new(
            vec![0; dec.layout.scalar_count as usize],
            vec![Vec::new(); dec.layout.array_count as usize],
        );
        decode_shape_generic(
            &mut gx,
            &proc_.res_shape,
            reply_fields::COUNT as u16,
            &mut slow,
        ).unwrap();

        // Structurally identical results: same arrays, same user scalars.
        prop_assert_eq!(&fast.arrays, &slow.arrays);
        prop_assert_eq!(
            &fast.scalars[reply_fields::COUNT..],
            &slow.scalars[reply_fields::COUNT..]
        );
        prop_assert_eq!(&fast.arrays[0], &data);
        // And the generic stream really did pay the interpretation the
        // fused lane skipped.
        prop_assert!(gx.counts().dispatches > 0);
    }
}
