//! Adaptive specialization conformance: the tiered runtime must be
//! **invisible on the wire**. Whatever tier marshals a call — the
//! generic micro-layer path, a compile-ahead specialized stub, or a
//! stub hot-swapped in mid-stream — request and reply images are
//! byte-identical, under a clean network and under the full seeded
//! loss/duplication/reordering fault matrix. On top of the wire
//! properties, the promotion and eviction policies hold their
//! invariants: the cache never exceeds its capacity, accounting never
//! double-counts an entry as both live and evicted, and promotion fires
//! after exactly `K` Tier-0 lookups.

use proptest::prelude::*;
use specrpc::echo::{generic_encode_request, ECHO_IDL, ECHO_PROG, ECHO_VERS};
use specrpc::{
    run_adaptive, AdaptiveClient, AdaptiveConfig, AdaptiveProc, AdaptiveRuntime,
    AdaptiveScenarioConfig, ProcPipeline, PublishMode, SpecService, StubCache, Tier, TierUsed,
};
use specrpc_netsim::net::{Network, NetworkConfig};
use specrpc_netsim::{FaultConfig, SimTime};
use specrpc_rpc::ClntUdp;
use specrpc_tempo::compile::{run_encode_with_xid, Outcome, StubArgs};
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::OpCounts;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const N: usize = 24;
const CALLS: usize = 10;
const SEEDS: [u64; 3] = [11, 22, 33];

fn configs() -> Vec<(&'static str, FaultConfig)> {
    vec![
        (
            "loss",
            FaultConfig {
                loss: 0.25,
                duplicate: 0.0,
                reorder: 0.0,
            },
        ),
        (
            "duplicate",
            FaultConfig {
                loss: 0.0,
                duplicate: 0.3,
                reorder: 0.0,
            },
        ),
        (
            "reorder",
            FaultConfig {
                loss: 0.0,
                duplicate: 0.0,
                reorder: 0.3,
            },
        ),
        ("mixed", FaultConfig::LOSSY),
    ]
}

/// How the server's adaptive runtime is configured for one deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Promotion disabled: every reply marshaled by the generic path.
    Generic,
    /// Cache pre-seeded at registration: every reply specialized.
    CompileAhead,
    /// Promote on first sight, publish at fixed drain points: replies
    /// switch from generic to specialized mid-sequence.
    HotSwap,
}

fn runtime_for(mode: Mode) -> Arc<AdaptiveRuntime> {
    let cfg = match mode {
        Mode::Generic => AdaptiveConfig::default().promote_after(u32::MAX),
        Mode::CompileAhead => AdaptiveConfig::default().compile_ahead(true),
        Mode::HotSwap => AdaptiveConfig::default()
            .promote_after(1)
            .publish(PublishMode::OnDrain),
    };
    AdaptiveRuntime::new(cfg)
}

fn echo_proc() -> AdaptiveProc {
    AdaptiveProc::resolve(ProcPipeline::new(N), ECHO_IDL, None, 1).expect("resolve")
}

struct RunResult {
    replies: Vec<Vec<u8>>,
    handler_runs: u64,
    stats: specrpc::AdaptiveStats,
}

fn call_data(i: usize) -> Vec<i32> {
    (0..N).map(|k| (i * 1000 + k) as i32).collect()
}

/// One deployment: an adaptive echo service in `mode`, driven by a raw
/// generic client (fixed request bytes, so the reply image is the only
/// variable across modes). Returns the raw reply datagrams.
fn run_deployment(mode: Mode, faults: FaultConfig, seed: u64) -> RunResult {
    let net = Network::new(NetworkConfig::lan().with_faults(faults), seed);
    let runtime = runtime_for(mode);
    let runs = Arc::new(AtomicU64::new(0));
    let r = runs.clone();
    let service =
        SpecService::new().proc_adaptive(runtime.clone(), echo_proc(), move |args: &StubArgs| {
            r.fetch_add(1, Ordering::Relaxed);
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        });
    specrpc_rpc::svc_udp::serve_udp(&net, 700, service.into_registry(), None);

    let mut clnt = ClntUdp::create(&net, 5000, 700, ECHO_PROG, ECHO_VERS);
    clnt.retry_timeout = SimTime::from_millis(20);
    clnt.total_timeout = SimTime::from_millis(60_000);
    let mut replies = Vec::new();
    for i in 0..CALLS {
        let xid = clnt.next_xid();
        let mut enc = XdrMem::encoder(1 << 16);
        let mut data = call_data(i);
        generic_encode_request(&mut enc, xid, &mut data).expect("encode");
        let reply = clnt
            .exchange(&enc.into_bytes(), xid)
            .unwrap_or_else(|e| panic!("{mode:?} call {i} under faults: {e}"));
        replies.push(reply);
        // Fixed hot-swap points: background compiles become visible
        // after calls 4 and 8, deterministically.
        if mode == Mode::HotSwap && (i + 1) % 4 == 0 {
            runtime.drain();
        }
    }
    RunResult {
        replies,
        handler_runs: runs.load(Ordering::Relaxed),
        stats: runtime.stats(),
    }
}

#[test]
fn reply_bytes_are_identical_across_tiers_and_the_fault_matrix() {
    for seed in SEEDS {
        // Clean-network runs of all three deployments: the generic,
        // compile-ahead, and mid-stream-hot-swap servers must emit the
        // SAME reply datagrams — the tentpole wire property.
        let generic = run_deployment(Mode::Generic, FaultConfig::NONE, seed);
        let ahead = run_deployment(Mode::CompileAhead, FaultConfig::NONE, seed);
        let swap = run_deployment(Mode::HotSwap, FaultConfig::NONE, seed);
        assert_eq!(
            ahead.replies, generic.replies,
            "seed {seed}: compile-ahead replies must match the generic tier"
        );
        assert_eq!(
            swap.replies, generic.replies,
            "seed {seed}: hot-swapped replies must match the generic tier"
        );
        // The modes really exercised different tiers.
        assert_eq!(generic.stats.tier1_calls, 0, "seed {seed}");
        assert_eq!(ahead.stats.tier0_calls, 0, "seed {seed}");
        assert!(
            swap.stats.tier0_calls > 0 && swap.stats.tier1_calls > 0,
            "seed {seed}: hot-swap run must serve both tiers: {:?}",
            swap.stats
        );
        assert_eq!(swap.stats.hot_swaps, 1, "seed {seed}: one promotion");

        // The full fault matrix per mode: faults never change the reply
        // bytes, and the handler runs exactly once per transaction.
        for (name, cfg) in configs() {
            for mode in [Mode::Generic, Mode::CompileAhead, Mode::HotSwap] {
                let faulty = run_deployment(mode, cfg, seed);
                assert_eq!(
                    faulty.replies, generic.replies,
                    "{name}/{seed}/{mode:?}: faults must not change reply bytes"
                );
                assert_eq!(
                    faulty.handler_runs, CALLS as u64,
                    "{name}/{seed}/{mode:?}: handler must run exactly once per call"
                );
            }
        }
    }
}

#[test]
fn mid_stream_hot_swap_is_seamless_for_a_live_client() {
    // Client and server share one runtime: a client that started cold
    // keeps calling while the background compile publishes, and simply
    // finds itself on Tier-1 — same results, no error, no reconnect.
    let net = Network::new(NetworkConfig::lan(), 9);
    let runtime = runtime_for(Mode::HotSwap);
    let service =
        SpecService::new().proc_adaptive(runtime.clone(), echo_proc(), |args: &StubArgs| {
            StubArgs::new(vec![], vec![args.arrays[0].clone()])
        });
    specrpc_rpc::svc_udp::serve_udp(&net, 700, service.into_registry(), None);
    let clnt = ClntUdp::create(&net, 5000, 700, ECHO_PROG, ECHO_VERS);
    let mut ac = AdaptiveClient::new(clnt, runtime.clone(), echo_proc());

    let mut tiers = Vec::new();
    for i in 0..8 {
        let data = call_data(i);
        let args = ac.args(vec![], vec![data.clone()]);
        let (out, tier) = ac.call(&args).expect("call");
        assert_eq!(out.arrays[0], data, "call {i}: echo integrity");
        tiers.push(tier);
        if i == 3 {
            runtime.drain();
        }
    }
    assert!(
        tiers[..4].iter().all(|t| *t == TierUsed::Generic),
        "pre-drain calls are cold: {tiers:?}"
    );
    assert!(
        tiers[4..].iter().all(|t| *t == TierUsed::Specialized),
        "post-drain calls hot-swapped: {tiers:?}"
    );
    let stats = runtime.stats();
    assert_eq!(stats.hot_swaps, 1, "{stats:?}");
    assert_eq!(ac.tier0_calls, 4);
    assert_eq!(ac.tier1_calls, 4);
    assert_eq!(ac.fallback_calls, 0, "no decode guard failures");
}

#[test]
fn promotion_fires_after_exactly_k_lookups() {
    let runtime = AdaptiveRuntime::new(
        AdaptiveConfig::default()
            .promote_after(3)
            .publish(PublishMode::OnDrain),
    );
    let ap = echo_proc();
    for i in 1..=2 {
        assert!(matches!(runtime.lookup(&ap), Tier::Generic));
        assert_eq!(
            runtime.stats().compiles_queued,
            0,
            "lookup {i} of 3 must not queue yet"
        );
    }
    assert!(matches!(runtime.lookup(&ap), Tier::Generic));
    assert_eq!(runtime.stats().compiles_queued, 1, "the K-th lookup queues");
    runtime.drain();
    assert!(
        matches!(runtime.lookup(&ap), Tier::Specialized(_)),
        "published compile serves Tier-1"
    );
    // The promotion is idempotent: more lookups never re-queue.
    for _ in 0..5 {
        assert!(matches!(runtime.lookup(&ap), Tier::Specialized(_)));
    }
    let stats = runtime.stats();
    assert_eq!(stats.compiles_queued, 1, "{stats:?}");
    assert_eq!(stats.compiles_completed, 1, "{stats:?}");
    assert_eq!(stats.hot_swaps, 1, "{stats:?}");
    assert_eq!(stats.tier0_calls, 3, "{stats:?}");
    assert_eq!(stats.tier1_calls, 6, "{stats:?}");
}

#[test]
fn churn_scenario_meets_the_acceptance_bars() {
    let cfg = AdaptiveScenarioConfig::smoke();
    let report = run_adaptive(&cfg).expect("adaptive run");
    let baseline = run_adaptive(&cfg.clone().generic_baseline()).expect("baseline run");

    // ≥90% of steady-state calls ride the specialized tier even though
    // the popular shape keeps rotating.
    let rate = report.steady_hit_rate();
    assert!(rate >= 0.9, "steady-state hit rate {rate:.3} under churn");

    // A cold call through Tier-0 costs at most 2× the generic round
    // trip — the promotion machinery adds bookkeeping, not a stall.
    let cold = report.cold_latency.p99();
    let generic = baseline.latency.p99();
    assert!(
        cold.as_nanos() <= 2 * generic.as_nanos(),
        "cold p99 {cold} exceeds 2x the generic p99 {generic}"
    );

    // The run exercised the subsystem end to end: promotions hot-swapped
    // and the undersized cache evicted by cost class.
    assert!(report.stats.hot_swaps > 0, "{:?}", report.stats);
    assert!(report.cache.evictions > 0, "{:?}", report.cache);
    assert_eq!(
        report.stats.evictions_by_class.iter().sum::<u64>(),
        report.cache.evictions,
        "every eviction lands in exactly one cost class"
    );

    // Deterministic: same config, byte-identical report.
    let again = run_adaptive(&cfg).expect("re-run");
    assert_eq!(report.render(), again.render());

    // The inline-compile baseline pays the stall the background pool
    // removes: its worst cold call costs milliseconds of virtual time
    // (the modeled Tempo run), far beyond any adaptive cold call.
    let inline = run_adaptive(&cfg.clone().inline_compile()).expect("inline run");
    assert!(
        inline.latency.max().as_nanos() >= 2_000_000,
        "inline compile must stall a caller: max {}",
        inline.latency.max()
    );
    assert!(
        inline.latency.max() > report.cold_latency.max(),
        "background compiles must beat the inline stall ({} vs {})",
        inline.latency.max(),
        report.cold_latency.max()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tier-0's request image is byte-identical to the compiled encode
    /// stub's for the same `(args, xid)` — arbitrary payload values.
    #[test]
    fn tier0_request_image_matches_the_compiled_stub(
        data in prop::collection::vec(any::<i32>(), 1..60),
        xid in any::<u32>(),
    ) {
        let n = data.len();
        let proc_ = ProcPipeline::new(n).build_from_idl(ECHO_IDL, None, 1).unwrap();
        let ap = AdaptiveProc::resolve(ProcPipeline::new(n), ECHO_IDL, None, 1).unwrap();

        // Generic image via the public Tier-0 encoder.
        let net = Network::new(NetworkConfig::lan(), 1);
        let clnt = ClntUdp::create(&net, 5100, 700, ECHO_PROG, ECHO_VERS);
        let runtime = AdaptiveRuntime::new(AdaptiveConfig::default().promote_after(u32::MAX));
        let mut ac = AdaptiveClient::new(clnt, runtime, ap);
        let args = ac.args(vec![], vec![data.clone()]);
        let generic = ac.encode_request_generic(&args, xid).unwrap();

        // Specialized image via the fused encode stub.
        let enc = &proc_.client_encode;
        let mut buf = vec![0u8; enc.wire_len];
        let mut counts = OpCounts::new();
        let r = run_encode_with_xid(&enc.program, &mut buf, &args, xid as i32, &mut counts)
            .unwrap();
        let Outcome::Done { ret: 1, wire_len } = r else {
            panic!("encode stub failed: {r:?}");
        };
        prop_assert_eq!(&buf[..wire_len], &generic[..]);
    }

    /// Cache policy invariants over arbitrary access traces: the entry
    /// count never exceeds the capacity, and the books always balance —
    /// every lookup is exactly one hit or miss, every miss created an
    /// entry, and every entry is either live or evicted, never both.
    #[test]
    fn cache_accounting_invariants_hold(
        ops in prop::collection::vec(1usize..6, 1..18),
        cap in 1usize..4,
    ) {
        let cache = StubCache::with_capacity(cap);
        for (step, &n) in ops.iter().enumerate() {
            cache
                .get_or_compile_idl(&ProcPipeline::new(n), ECHO_IDL, None, 1)
                .unwrap();
            let s = cache.stats();
            prop_assert!(s.entries <= cap, "step {}: {} > cap {}", step, s.entries, cap);
            prop_assert_eq!(
                s.hits + s.misses,
                step as u64 + 1,
                "every lookup is exactly one hit or miss"
            );
            prop_assert_eq!(
                s.entries as u64,
                s.misses - s.evictions,
                "live entries = misses - evictions (no double-count)"
            );
            prop_assert_eq!(
                s.evictions_by_class.iter().sum::<u64>(),
                s.evictions,
                "every eviction lands in exactly one cost class"
            );
        }
    }
}
