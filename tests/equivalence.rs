//! Property tests of the reproduction's central invariant:
//! **specialization preserves semantics** — for all inputs, the
//! specialized stubs produce exactly the bytes/values the generic layered
//! code produces (`spec(p, s)(d) == p(s, d)`), and decode inverts encode.

use proptest::prelude::*;
use specrpc::echo::{build_echo_proc, generic_encode_request, ECHO_IDL};
use specrpc::{ProcPipeline, StubCache};
use specrpc_rpcgen::desc::{xdr_value, TypeDesc, XdrValue};
use specrpc_tempo::compile::{run_decode, run_encode, Outcome, StubArgs};
use specrpc_xdr::mem::XdrMem;
use specrpc_xdr::{OpCounts, XdrStream};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generic and specialized request images are byte-identical for
    /// arbitrary data and sizes.
    #[test]
    fn specialized_request_equals_generic(
        data in prop::collection::vec(any::<i32>(), 1..300),
        xid in any::<u32>(),
    ) {
        let n = data.len();
        let proc_ = build_echo_proc(n, None).expect("pipeline");

        let mut enc = XdrMem::encoder(1 << 16);
        let mut d = data.clone();
        let len = generic_encode_request(&mut enc, xid, &mut d).unwrap();

        let args = StubArgs::new(vec![xid as i32], vec![data.clone()]);
        let mut buf = vec![0u8; proc_.client_encode.wire_len];
        let mut counts = OpCounts::new();
        run_encode(&proc_.client_encode.program, &mut buf, &args, &mut counts).unwrap();

        prop_assert_eq!(len, buf.len());
        prop_assert_eq!(&enc.bytes()[..len], buf.as_slice());
    }

    /// Chunked (Table 4) compilation is byte-equivalent to full unrolling.
    #[test]
    fn chunked_equals_full(
        data in prop::collection::vec(any::<i32>(), 30..400),
        chunk in 1usize..64,
    ) {
        let n = data.len();
        let full = build_echo_proc(n, None).expect("full");
        let chunked = build_echo_proc(n, Some(chunk)).expect("chunked");
        let args = StubArgs::new(vec![7], vec![data]);
        let mut b1 = vec![0u8; full.client_encode.wire_len];
        let mut b2 = vec![0u8; chunked.client_encode.wire_len];
        let mut counts = OpCounts::new();
        run_encode(&full.client_encode.program, &mut b1, &args, &mut counts).unwrap();
        run_encode(&chunked.client_encode.program, &mut b2, &args, &mut counts).unwrap();
        prop_assert_eq!(b1, b2);
    }

    /// A `StubCache` hit is byte-equivalent to a fresh Tempo compile of
    /// the same shape: memoization must not change the wire image.
    #[test]
    fn stub_cache_hit_is_byte_identical_to_fresh_compile(
        data in prop::collection::vec(any::<i32>(), 1..150),
        xid in any::<u32>(),
    ) {
        let n = data.len();
        let cache = StubCache::new();
        let p = ProcPipeline::new(n);
        let first = cache.get_or_compile_idl(&p, ECHO_IDL, None, 1).unwrap();
        let cached = cache.get_or_compile_idl(&p, ECHO_IDL, None, 1).unwrap();
        prop_assert!(Arc::ptr_eq(&first, &cached), "second lookup must hit");
        prop_assert_eq!(cache.stats().hits, 1);
        prop_assert_eq!(cache.stats().misses, 1);

        let fresh = build_echo_proc(n, None).unwrap();
        let args = StubArgs::new(vec![xid as i32], vec![data.clone()]);
        let mut counts = OpCounts::new();
        let mut from_cache = vec![0u8; cached.client_encode.wire_len];
        run_encode(&cached.client_encode.program, &mut from_cache, &args, &mut counts)
            .unwrap();
        let mut from_fresh = vec![0u8; fresh.client_encode.wire_len];
        run_encode(&fresh.client_encode.program, &mut from_fresh, &args, &mut counts)
            .unwrap();
        prop_assert_eq!(from_cache, from_fresh);
    }

    /// Server decode stub inverts client encode stub for all data.
    #[test]
    fn stub_decode_inverts_encode(
        data in prop::collection::vec(any::<i32>(), 1..200),
        xid in any::<u32>(),
    ) {
        let n = data.len();
        let proc_ = build_echo_proc(n, None).expect("pipeline");
        let args = StubArgs::new(vec![xid as i32], vec![data.clone()]);
        let mut wire = vec![0u8; proc_.client_encode.wire_len];
        let mut counts = OpCounts::new();
        run_encode(&proc_.client_encode.program, &mut wire, &args, &mut counts).unwrap();

        let sd = &proc_.server_decode;
        let mut out = StubArgs::new(
            vec![0; sd.layout.scalar_count as usize],
            vec![Vec::new(); sd.layout.array_count as usize],
        );
        let r = run_decode(&sd.program, &wire, &mut out, wire.len(), &mut counts).unwrap();
        let ok = matches!(r, Outcome::Done { ret: 1, .. });
        prop_assert!(ok);
        prop_assert_eq!(&out.arrays[0], &data);
        prop_assert_eq!(out.scalars[0] as u32, xid);
    }

    /// Any single corrupted byte in the header region either still decodes
    /// to the same values or falls back — never panics, never silently
    /// accepts wrong protocol words it checks.
    #[test]
    fn corrupted_headers_fallback_or_reject(
        data in prop::collection::vec(any::<i32>(), 1..50),
        // Words 1..6 (mtype, rpcvers, prog, vers, proc) are all checked;
        // auth flavors (words 6 and 8) are deliberately accepted.
        corrupt_at in 4usize..24,
        delta in 1u8..255,
    ) {
        let n = data.len();
        let proc_ = build_echo_proc(n, None).expect("pipeline");
        let args = StubArgs::new(vec![1], vec![data]);
        let mut wire = vec![0u8; proc_.client_encode.wire_len];
        let mut counts = OpCounts::new();
        run_encode(&proc_.client_encode.program, &mut wire, &args, &mut counts).unwrap();
        wire[corrupt_at] ^= delta;

        let sd = &proc_.server_decode;
        let mut out = StubArgs::new(
            vec![0; sd.layout.scalar_count as usize],
            vec![Vec::new(); sd.layout.array_count as usize],
        );
        // Must not error or panic; Fallback is the expected outcome for
        // corruption of any checked protocol word.
        let r = run_decode(&sd.program, &wire, &mut out, wire.len(), &mut counts).unwrap();
        prop_assert_eq!(r, Outcome::Fallback);
    }

    /// The table-driven marshaler round-trips arbitrary nested values.
    #[test]
    fn descriptor_marshaler_roundtrips(
        ints in prop::collection::vec(any::<i32>(), 0..20),
        s in "[a-zA-Z0-9 ]{0,24}",
        flag in any::<bool>(),
        opt in prop::option::of(any::<i32>()),
    ) {
        let desc = TypeDesc::Struct(vec![
            ("xs".into(), TypeDesc::VarArray(Box::new(TypeDesc::Int), 64)),
            ("name".into(), TypeDesc::String(64)),
            ("flag".into(), TypeDesc::Bool),
            ("opt".into(), TypeDesc::Optional(Box::new(TypeDesc::Int))),
        ]);
        let val = XdrValue::Struct(vec![
            XdrValue::Array(ints.into_iter().map(XdrValue::Int).collect()),
            XdrValue::Str(s),
            XdrValue::Bool(flag),
            XdrValue::Optional(opt.map(|v| Box::new(XdrValue::Int(v)))),
        ]);
        let mut enc = XdrMem::encoder(4096);
        let mut v = val.clone();
        xdr_value(&mut enc, &desc, &mut v).unwrap();
        prop_assert_eq!(enc.getpos(), val.wire_size(&desc));
        let mut dec = XdrMem::decoder(enc.bytes());
        let mut out = XdrValue::default_of(&desc);
        xdr_value(&mut dec, &desc, &mut out).unwrap();
        prop_assert_eq!(out, val);
    }

    /// XDR primitive roundtrip through the generic micro-layers.
    #[test]
    fn xdr_scalar_roundtrips(v in any::<i32>(), h in any::<i64>(), d in any::<f64>()) {
        use specrpc_xdr::primitives::{xdr_double, xdr_hyper, xdr_int};
        let mut enc = XdrMem::encoder(32);
        let (mut a, mut b, mut c) = (v, h, d);
        xdr_int(&mut enc, &mut a).unwrap();
        xdr_hyper(&mut enc, &mut b).unwrap();
        xdr_double(&mut enc, &mut c).unwrap();
        let mut dec = XdrMem::decoder(enc.bytes());
        let (mut x, mut y, mut z) = (0, 0, 0.0);
        xdr_int(&mut dec, &mut x).unwrap();
        xdr_hyper(&mut dec, &mut y).unwrap();
        xdr_double(&mut dec, &mut z).unwrap();
        prop_assert_eq!(x, v);
        prop_assert_eq!(y, h);
        prop_assert!(z == d || (z.is_nan() && d.is_nan()));
    }
}
